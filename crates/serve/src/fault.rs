//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] gives per-injection-point probabilities; a
//! [`FaultInjector`] turns the plan into a *deterministic* schedule by
//! drawing every decision from one seeded ChaCha8 stream and logging it.
//! The same injector is shared between the chaos client (request-side
//! faults, reload failures) and the daemon (reply-side faults), and because
//! the chaos client is strictly sequential, the interleaving of decisions —
//! and therefore the entire fault schedule — is a pure function of the seed.
//! Re-running a seed replays the identical [`FaultEvent`] sequence, which is
//! what makes a failing chaos scenario reproducible from its seed alone.
//!
//! Determinism rule: only `Place`/`PlaceBatch` replies consult the injector
//! on the daemon side. Control-plane traffic (`Stats` polling, the drain
//! departs) never draws from the stream, so bookkeeping round-trips cannot
//! shift the schedule.

use gaugur_gamesim::rng::rng_for;
use parking_lot::Mutex;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// RNG context tag for fault streams (distinct from the load driver's and
/// the chaos op stream's contexts).
pub const FAULT_CTX: u64 = 0x4641_554C; // "FAUL"

/// Where in the request lifecycle a fault decision is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionPoint {
    /// The chaos client is about to send a data-plane request frame.
    Request,
    /// The daemon is about to write a `Place`/`PlaceBatch` reply frame.
    Reply,
    /// The chaos client is about to issue a model reload.
    Reload,
    /// The chaos client is about to trigger a background retrain.
    Retrain,
}

/// What the injector decided to do at a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed normally.
    None,
    /// Close the connection without sending (request) or before the reply
    /// reaches the client (reply).
    DropConnection,
    /// Write roughly half the frame, then close — a torn write the peer
    /// sees as a mid-frame EOF.
    TornFrame,
    /// Request only: deliver the frame with its payload poisoned so it can
    /// never decode (the stream stays framed, so the daemon must answer an
    /// error and keep the connection).
    CorruptFrame,
    /// Request only: write a partial frame and then go silent, holding the
    /// socket open — the daemon's read deadline must cut the connection.
    StalledFrame,
    /// Request only: declare a frame length above the daemon's cap.
    OversizedFrame,
    /// Sleep this many milliseconds, then proceed normally.
    Stall(u64),
    /// Reload only: point the reload at a nonexistent artifact so it fails.
    FailReload,
    /// Retrain only: request a retrain that cannot satisfy its sample
    /// floor, so the background job fails without touching the model.
    FailRetrain,
}

/// Per-point fault probabilities. Each decision draws one uniform sample
/// and walks the point's actions cumulatively, so a plan is valid as long
/// as the probabilities at each point sum to at most 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the decision stream.
    pub seed: u64,
    /// P(drop the connection instead of sending a request).
    pub drop_request: f64,
    /// P(tear a request frame mid-write).
    pub torn_request: f64,
    /// P(deliver a corrupt, undecodable request payload).
    pub corrupt_request: f64,
    /// P(stall mid-frame until the daemon's read deadline fires).
    pub stalled_request: f64,
    /// P(declare a request length above the daemon's frame cap).
    pub oversized_request: f64,
    /// P(daemon drops the connection instead of writing a placement reply).
    pub drop_reply: f64,
    /// P(daemon tears a placement reply mid-write).
    pub torn_reply: f64,
    /// P(daemon stalls [`FaultPlan::stall_ms`] before a placement reply).
    pub stall_reply: f64,
    /// P(a reload targets a nonexistent artifact and fails).
    pub fail_reload: f64,
    /// P(a triggered retrain demands an unsatisfiable sample floor and
    /// fails in the background).
    pub fail_retrain: f64,
    /// Stall duration for `Stall` actions, in milliseconds.
    pub stall_ms: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (every decision is `None`); useful as a
    /// baseline and for fault-free replays.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_request: 0.0,
            torn_request: 0.0,
            corrupt_request: 0.0,
            stalled_request: 0.0,
            oversized_request: 0.0,
            drop_reply: 0.0,
            torn_reply: 0.0,
            stall_reply: 0.0,
            fail_reload: 0.0,
            fail_retrain: 0.0,
            stall_ms: 0,
        }
    }

    /// The default chaos mix: every fault kind is probable enough to appear
    /// across a small suite of seeds, while most operations still succeed
    /// (so the scenarios exercise recovery, not just rejection). Stalled
    /// requests are kept rare because each one costs a full daemon read
    /// deadline of wall time.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_request: 0.06,
            torn_request: 0.06,
            corrupt_request: 0.06,
            stalled_request: 0.02,
            oversized_request: 0.04,
            drop_reply: 0.08,
            torn_reply: 0.06,
            stall_reply: 0.05,
            fail_reload: 0.35,
            fail_retrain: 0.35,
            stall_ms: 15,
        }
    }
}

/// One logged decision: the `seq`-th draw of the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Position in the global decision sequence (0-based).
    pub seq: u64,
    /// Where the decision was made.
    pub point: InjectionPoint,
    /// What was decided.
    pub action: FaultAction,
}

/// A seeded fault-decision stream with a full event log.
///
/// Shared (via `Arc`) between the chaos client and the daemon config; every
/// [`decide`](FaultInjector::decide) call draws exactly one sample from the
/// stream and appends one event, whatever the outcome — so the draw count,
/// and with it the whole schedule, depends only on the sequence of decision
/// points, never on which faults happened to fire.
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<(ChaCha8Rng, Vec<FaultEvent>)>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("decisions", &self.state.lock().1.len())
            .finish()
    }
}

fn pick(draw: f64, table: &[(f64, FaultAction)]) -> FaultAction {
    let mut acc = 0.0;
    for &(p, action) in table {
        acc += p;
        if draw < acc {
            return action;
        }
    }
    FaultAction::None
}

impl FaultInjector {
    /// A fresh injector for `plan`, seeded from `plan.seed`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            state: Mutex::new((rng_for(plan.seed, &[FAULT_CTX]), Vec::new())),
        }
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide what happens at `point`, logging the decision. Exactly one
    /// RNG draw per call, fault or not.
    pub fn decide(&self, point: InjectionPoint) -> FaultAction {
        let mut state = self.state.lock();
        let (rng, events) = &mut *state;
        let draw: f64 = rng.gen();
        let p = &self.plan;
        let action = match point {
            InjectionPoint::Request => pick(
                draw,
                &[
                    (p.drop_request, FaultAction::DropConnection),
                    (p.torn_request, FaultAction::TornFrame),
                    (p.corrupt_request, FaultAction::CorruptFrame),
                    (p.stalled_request, FaultAction::StalledFrame),
                    (p.oversized_request, FaultAction::OversizedFrame),
                ],
            ),
            InjectionPoint::Reply => pick(
                draw,
                &[
                    (p.drop_reply, FaultAction::DropConnection),
                    (p.torn_reply, FaultAction::TornFrame),
                    (p.stall_reply, FaultAction::Stall(p.stall_ms)),
                ],
            ),
            InjectionPoint::Reload => pick(draw, &[(p.fail_reload, FaultAction::FailReload)]),
            InjectionPoint::Retrain => pick(draw, &[(p.fail_retrain, FaultAction::FailRetrain)]),
        };
        events.push(FaultEvent {
            seq: events.len() as u64,
            point,
            action,
        });
        action
    }

    /// The full decision log so far, in order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.state.lock().1.clone()
    }

    /// Number of decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.state.lock().1.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_the_identical_schedule() {
        let points = [
            InjectionPoint::Request,
            InjectionPoint::Reply,
            InjectionPoint::Request,
            InjectionPoint::Reload,
            InjectionPoint::Reply,
        ];
        let run = |seed: u64| {
            let injector = FaultInjector::new(FaultPlan::chaos(seed));
            for _ in 0..40 {
                for p in points {
                    injector.decide(p);
                }
            }
            injector.events()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds must schedule differently");
    }

    #[test]
    fn quiet_plan_never_fires() {
        let injector = FaultInjector::new(FaultPlan::quiet(3));
        for _ in 0..100 {
            assert_eq!(injector.decide(InjectionPoint::Request), FaultAction::None);
            assert_eq!(injector.decide(InjectionPoint::Reply), FaultAction::None);
            assert_eq!(injector.decide(InjectionPoint::Reload), FaultAction::None);
        }
        assert!(injector
            .events()
            .iter()
            .all(|e| e.action == FaultAction::None));
    }

    #[test]
    fn chaos_plan_covers_every_action_kind() {
        let injector = FaultInjector::new(FaultPlan::chaos(1));
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..2000 {
            seen.insert(format!("{:?}", injector.decide(InjectionPoint::Request)));
            seen.insert(format!("{:?}", injector.decide(InjectionPoint::Reply)));
            seen.insert(format!("{:?}", injector.decide(InjectionPoint::Reload)));
            seen.insert(format!("{:?}", injector.decide(InjectionPoint::Retrain)));
        }
        for action in [
            "DropConnection",
            "TornFrame",
            "CorruptFrame",
            "StalledFrame",
            "OversizedFrame",
            "Stall(15)",
            "FailReload",
            "FailRetrain",
            "None",
        ] {
            assert!(seen.contains(action), "never drew {action}");
        }
    }

    #[test]
    fn every_decision_is_logged_with_its_sequence_number() {
        let injector = FaultInjector::new(FaultPlan::chaos(5));
        injector.decide(InjectionPoint::Request);
        injector.decide(InjectionPoint::Reply);
        let events = injector.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].point, InjectionPoint::Request);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].point, InjectionPoint::Reply);
        assert_eq!(injector.decisions(), 2);
    }
}
