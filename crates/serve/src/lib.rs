//! # gaugur-serve — the online placement daemon
//!
//! `gaugur-core` trains and persists a GAugur model; this crate puts that
//! model *online*: a multi-threaded TCP daemon that holds live cluster
//! state, answers placement/prediction requests over a length-prefixed JSON
//! wire protocol, and can hot-swap its model without dropping in-flight
//! work. This is the serving half of the paper's story — the interference
//! predictor is only useful to a cloud-gaming operator as a low-latency
//! placement service.
//!
//! Deliberately **no async runtime**: the protocol is small and connections
//! are few (schedulers, not players, are the clients), so blocking
//! `std::net` I/O with an acceptor thread, a bounded work queue and a worker
//! pool is simpler and entirely dependency-free. Backpressure is explicit —
//! when the queue is full, new connections get `Overloaded { retry_after_ms }`
//! instead of unbounded latency.
//!
//! Module map:
//!
//! * [`wire`] — request/response types, framing, decode hardening.
//! * [`daemon`] — acceptor, worker pool, handlers, graceful shutdown.
//! * [`model`] — artifact loading, hot reload, prediction memoization.
//! * [`cluster`] — live fleet occupancy and session bookkeeping.
//! * [`queue`] — the bounded work queue between acceptor and workers.
//! * [`stats`] — atomic counters and latency histograms.
//! * [`trace`] — per-request stage timings, slow-request ring, Prometheus
//!   exposition.
//! * [`slo`] — windowed telemetry rings, rolling views, burn-rate SLO
//!   engine and alert state machine.
//! * [`recorder`] — always-on flight recorder with deterministic JSONL
//!   dumps.
//! * [`feedback`] — outcome ingestion, drift detection, retrain dataset.
//! * [`client`] — typed blocking client over one connection.
//! * [`load`] — deterministic Poisson load driver.
//! * [`fault`] — seeded fault plans and the deterministic injector.
//! * [`chaos`] — seeded fault scenarios with invariant oracles and replay.
//!
//! ## Quick example
//!
//! ```
//! use gaugur_serve::{daemon, Client, DaemonConfig, ModelHandle};
//! use gaugur_gamesim::{GameCatalog, GameId, Resolution, Server};
//!
//! // Train a small model in-process (normally: `ModelHandle::load(path)`).
//! let server = Server::reference(7);
//! let catalog = GameCatalog::generate(42, 8);
//! let config = gaugur_core::GAugurConfig {
//!     plan: gaugur_core::ColocationPlan { pairs: 30, triples: 8, quads: 4, seed: 3 },
//!     ..Default::default()
//! };
//! let model = gaugur_core::GAugur::build(&server, &catalog, config);
//!
//! let handle = daemon::start(
//!     DaemonConfig { n_servers: 4, print_stats_on_shutdown: false, ..Default::default() },
//!     ModelHandle::from_model(model),
//! )
//! .unwrap();
//!
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! let placed = client.place(GameId(0), Resolution::Fhd1080).unwrap();
//! assert!(placed.predicted_fps > 0.0);
//! client.depart(placed.session).unwrap();
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod client;
pub mod cluster;
pub mod daemon;
pub mod fault;
pub mod feedback;
pub mod load;
pub mod model;
pub mod queue;
pub mod recorder;
pub mod slo;
pub mod stats;
pub mod trace;
pub mod wire;

pub use chaos::{ChaosConfig, ScenarioReport};
pub use client::{Client, ClientError, Placed, Predicted, RetryPolicy};
pub use cluster::ClusterState;
pub use daemon::{start, DaemonConfig, DaemonHandle};
pub use fault::{FaultAction, FaultEvent, FaultInjector, FaultPlan, InjectionPoint};
pub use feedback::{DriftDetector, Feedback, FeedbackConfig, FeedbackCounters, OutcomeRecord};
pub use load::{LoadConfig, LoadReport};
pub use model::{LoadedModel, MemoizedFps, ModelHandle, PredictionMemo};
pub use recorder::{Event, Recorder, RecorderDump};
pub use slo::{
    AlertState, Clock, ManualClock, MonotonicClock, SloConfig, SloEngine, SloReport, WindowView,
    WindowedCollector,
};
pub use stats::{RequestStats, StatsSnapshot};
pub use trace::{
    render_prometheus, verify_stage_accounting, RequestTrace, SlowMeta, SlowRequest, Stage,
    StageStats, TraceCollector,
};
pub use wire::{BatchPlaceResult, OutcomeReport, Request, Response, WirePlacement};
