//! Seeded chaos scenarios against a live daemon, with invariant oracles.
//!
//! A scenario is a pure function of its seed: one ChaCha8 stream
//! (`rng_for(seed, [CHAOS_CTX])`) generates the operation mix, a second
//! (the [`FaultInjector`]'s, seeded from the same scenario seed) decides
//! which operations get faulted and how. The chaos client is strictly
//! sequential and only `Place`/`PlaceBatch` replies consult the injector on
//! the daemon side, so the interleaving of fault decisions — and therefore
//! every byte on the wire — is reproducible from the seed alone.
//!
//! After the run, five oracle families check the daemon never lied:
//!
//! 1. **Stats conservation** — every admitted placement was either
//!    confirmed to the client or rolled back
//!    (`placements_admitted == confirmed + placements_rolled_back`), every
//!    malformed frame was one the client deliberately poisoned, and every
//!    connection the runner opened was eventually closed.
//! 2. **No leaked placements** — after the drain, `active_sessions == 0`:
//!    a client that died mid-request must not leave sessions in the fleet.
//! 3. **Monotone model version** — the version observed across replies
//!    never decreases, and the final version is exactly
//!    `1 + successful reloads`.
//! 4. **Byte-identical replay** — the surviving operations, replayed
//!    against a fresh fault-free daemon, make bit-for-bit the same
//!    decisions (server choice, predicted-FPS bits, degradation bits).
//!    This is the strongest oracle: it holds only because lost placements
//!    are rolled back to a *bit-exact* pre-admit state (occupancy and
//!    score-cache sums), making every fault a net no-op.
//! 5. **Per-shard conservation** — the daemon under chaos runs *two*
//!    placement shards (single worker, so runs stay strictly sequential
//!    and seed-pure); at both quiesce points (post-drain, post-shutdown)
//!    the per-shard active counts must sum to the global count and every
//!    session id must route to exactly the shard that holds it.
//!
//! Reproducing a failure locally: `gaugur chaos --seed <N>` re-runs the
//! scenario with the identical fault schedule and prints the report.

use crate::daemon::{self, DaemonConfig};
use crate::fault::{FaultAction, FaultEvent, FaultInjector, FaultPlan, InjectionPoint};
use crate::feedback::FeedbackConfig;
use crate::model::ModelHandle;
use crate::stats::StatsSnapshot;
use crate::wire::{
    read_frame, write_frame, BatchPlaceResult, OutcomeReport, Request, Response, WirePlacement,
};
use gaugur_gamesim::rng::rng_for;
use gaugur_gamesim::{GameId, Resolution};
use rand::Rng;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// RNG context tag for the operation stream (distinct from the fault
/// stream's [`crate::fault::FAULT_CTX`]).
pub const CHAOS_CTX: u64 = 0x4348_414F; // "CHAO"

/// Configuration of one chaos scenario.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Scenario seed; drives both the operation mix and the fault schedule.
    pub seed: u64,
    /// Operations to issue (each is a place, batch, depart, predict or
    /// reload drawn from the op stream).
    pub ops: u64,
    /// Fleet size of the daemon under test.
    pub n_servers: usize,
    /// Games to draw operations from (must all be known to the model).
    pub games: Vec<GameId>,
    /// Resolutions to draw operations from.
    pub resolutions: Vec<Resolution>,
    /// Path to the saved model artifact the daemon loads (and reloads).
    pub artifact: PathBuf,
    /// QoS floor for the daemon and for `Predict` operations.
    pub qos: f64,
    /// Fault probabilities; `plan.seed` is overridden with the scenario
    /// seed so one number reproduces everything.
    pub plan: FaultPlan,
    /// Daemon read deadline. Kept short: every `StalledFrame` fault costs
    /// one full deadline of wall time.
    pub read_timeout: Duration,
}

impl ChaosConfig {
    /// A scenario over `games` with the default chaos mix.
    pub fn for_seed(seed: u64, artifact: PathBuf, games: Vec<GameId>) -> ChaosConfig {
        ChaosConfig {
            seed,
            ops: 40,
            n_servers: 6,
            games,
            resolutions: vec![Resolution::Hd720, Resolution::Fhd1080],
            artifact,
            qos: 60.0,
            plan: FaultPlan::chaos(seed),
            read_timeout: Duration::from_millis(400),
        }
    }
}

/// What one scenario observed and whether its oracles held.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario seed.
    pub seed: u64,
    /// Full fault-decision log, in order (identical across re-runs of the
    /// same seed).
    pub events: Vec<FaultEvent>,
    /// Placements whose reply reached the client (batch items count
    /// individually).
    pub confirmed: u64,
    /// Placement attempts the policy rejected (reply delivered).
    pub rejected: u64,
    /// Operations whose request never reached the daemon's handler
    /// (dropped, torn, stalled, corrupted or oversized on the way in).
    pub lost_requests: u64,
    /// Placement operations the daemon applied and then rolled back
    /// because the reply could not be delivered.
    pub lost_replies: u64,
    /// Successful model reloads.
    pub reloads_ok: u64,
    /// Reloads the injector pointed at a nonexistent artifact.
    pub reloads_failed: u64,
    /// Background retrains that completed and published a new version.
    pub retrains_ok: u64,
    /// Background retrains the injector forced to fail (unsatisfiable
    /// sample floor); these must never bump the model version.
    pub retrains_failed: u64,
    /// Outcome reports the daemon accepted.
    pub outcomes_accepted: u64,
    /// Outcome reports the daemon dropped (bogus session ids the scenario
    /// sent deliberately).
    pub outcomes_dropped: u64,
    /// Operations replayed against the fault-free daemon.
    pub replayed: u64,
    /// Hash of every decision (servers, FPS bits, degradation bits) made
    /// during the faulted run; excludes all wall-clock measurements.
    pub decision_digest: u64,
    /// Daemon stats after drain and shutdown.
    pub final_stats: StatsSnapshot,
    /// Deterministic flight-recorder dump (JSONL) from the faulted run —
    /// admit/depart events with all wall-clock and identity noise struck.
    /// `run_scenario` demands it byte-identical with the fault-free
    /// replay's dump; a mismatch is an oracle violation.
    pub recorder_dump: String,
    /// Oracle violations; empty means the scenario passed.
    pub violations: Vec<String>,
}

impl ScenarioReport {
    /// Whether every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic digest of everything seed-determined in the report:
    /// the fault schedule, the outcome counters, every decision bit and the
    /// deterministic subset of the final stats. Two runs of the same seed
    /// produce equal digests; wall-clock fields (latencies, uptime) are
    /// excluded.
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.seed.hash(&mut h);
        for e in &self.events {
            format!("{e:?}").hash(&mut h);
        }
        (
            self.confirmed,
            self.rejected,
            self.lost_requests,
            self.lost_replies,
            self.reloads_ok,
            self.reloads_failed,
            self.retrains_ok,
            self.retrains_failed,
            self.outcomes_accepted,
            self.outcomes_dropped,
            self.replayed,
            self.decision_digest,
        )
            .hash(&mut h);
        self.recorder_dump.hash(&mut h);
        for v in &self.violations {
            v.hash(&mut h);
        }
        let s = &self.final_stats;
        (
            s.model_version,
            s.active_sessions,
            s.connections_accepted,
            s.connections_closed,
            s.overloaded_rejections,
            s.shutdown_rejections,
            s.malformed_frames,
            s.placements_admitted,
            s.placements_rolled_back,
        )
            .hash(&mut h);
        (
            s.feedback_accepted,
            s.feedback_stale,
            s.feedback_dropped,
            s.feedback_buffered,
            s.feedback_evicted,
            s.retrains_ok,
            s.retrains_failed,
        )
            .hash(&mut h);
        h.finish()
    }
}

impl std::fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {:>4}  {}  confirmed {:>3}  rejected {:>2}  lost req/reply {:>2}/{:>2}  \
             reloads {}+{}f  retrains {}+{}f  outcomes {}/{}d  replayed {:>3}  digest {:016x}",
            self.seed,
            if self.passed() { "PASS" } else { "FAIL" },
            self.confirmed,
            self.rejected,
            self.lost_requests,
            self.lost_replies,
            self.reloads_ok,
            self.reloads_failed,
            self.retrains_ok,
            self.retrains_failed,
            self.outcomes_accepted,
            self.outcomes_dropped,
            self.replayed,
            self.digest(),
        )?;
        for v in &self.violations {
            write!(f, "\n  violation: {v}")?;
        }
        Ok(())
    }
}

/// What a confirmed placement decision looked like on the wire. FPS is kept
/// as raw bits: the replay oracle demands bit-identity, not closeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlaceOutcome {
    Placed {
        logical: u64,
        server: usize,
        fps: u64,
    },
    Rejected,
}

/// One delivered operation, recorded for the fault-free replay.
#[derive(Debug, Clone)]
enum TraceOp {
    Place {
        game: GameId,
        resolution: Resolution,
        outcome: PlaceOutcome,
    },
    Batch {
        reqs: Vec<WirePlacement>,
        outcomes: Vec<PlaceOutcome>,
    },
    Depart {
        logical: u64,
        server: usize,
    },
    Predict {
        game: GameId,
        resolution: Resolution,
        others: Vec<WirePlacement>,
        feasible: bool,
        degradation: u64,
        fps: u64,
    },
}

/// How an injected (or clean) send ended.
enum Delivery {
    /// The daemon handled the request and the reply arrived.
    Reply(Response),
    /// The daemon never parsed the request — a guaranteed net no-op.
    RequestLost,
    /// The daemon handled a placement but the reply died; the daemon must
    /// have rolled the placement back.
    ReplyLost,
}

/// The sequential chaos client: one data connection at a time, request-side
/// fault injection before every operation, and a stats-based quiesce after
/// every reconnect so a dead connection's rollback lands before the next
/// operation reads fleet state.
struct Runner {
    addr: SocketAddr,
    stream: TcpStream,
    injector: Arc<FaultInjector>,
    max_frame_len: usize,
    client_timeout: Duration,
    connects: u64,
    corrupt_sent: u64,
    oversized_sent: u64,
}

fn connect(addr: SocketAddr, timeout: Duration) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    Ok(stream)
}

fn encode(request: &Request) -> Vec<u8> {
    let payload = serde_json::to_string(request)
        .expect("request serializes")
        .into_bytes();
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(&payload);
    frame
}

impl Runner {
    fn new(
        addr: SocketAddr,
        injector: Arc<FaultInjector>,
        max_frame_len: usize,
    ) -> Result<Runner, String> {
        let client_timeout = Duration::from_secs(10);
        Ok(Runner {
            addr,
            stream: connect(addr, client_timeout)?,
            injector,
            max_frame_len,
            client_timeout,
            connects: 1,
            corrupt_sent: 0,
            oversized_sent: 0,
        })
    }

    /// One clean request/response round-trip, no injection. Used for stats
    /// polling and the drain, which must never draw on the fault stream.
    fn raw_call(&mut self, request: &Request) -> Result<Response, String> {
        write_frame(&mut self.stream, request).map_err(|e| format!("raw write failed: {e}"))?;
        read_frame(&mut self.stream).map_err(|e| format!("raw read failed: {e}"))
    }

    fn raw_stats(&mut self) -> Result<StatsSnapshot, String> {
        match self.raw_call(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(*snapshot),
            other => Err(format!("stats answered {other:?}")),
        }
    }

    /// Open a fresh data connection and wait until the daemon has finished
    /// with every previous one. The wait is what makes reply-loss rollbacks
    /// *happen-before* the next operation — without it, a racing worker
    /// could still hold a doomed session while the next placement decides,
    /// and determinism (and the replay oracle) would be lost.
    fn reconnect(&mut self) -> Result<(), String> {
        self.stream = connect(self.addr, self.client_timeout)?;
        self.connects += 1;
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let snapshot = self.raw_stats()?;
            if snapshot.connections_closed + 1 >= self.connects {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "quiesce timeout: {} of {} prior connections closed",
                    snapshot.connections_closed,
                    self.connects - 1
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Read until the daemon closes the connection (used after stalled and
    /// oversized frames, where the daemon must cut the link).
    fn wait_for_close(&mut self) -> Result<(), String> {
        let mut buf = [0u8; 256];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(()),
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err("daemon did not close a dead connection in time".into());
                }
                Err(_) => return Ok(()),
            }
        }
    }

    /// Issue one operation with request-side fault injection.
    /// `reply_faultable` marks operations whose replies the daemon may
    /// fault (placements); reply loss on any other operation is an oracle
    /// violation, not a tolerated fault.
    fn send_op(&mut self, request: &Request, reply_faultable: bool) -> Result<Delivery, String> {
        match self.injector.decide(InjectionPoint::Request) {
            FaultAction::DropConnection => {
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                self.reconnect()?;
                Ok(Delivery::RequestLost)
            }
            FaultAction::TornFrame => {
                let frame = encode(request);
                let cut = frame.len() / 2;
                let _ = self.stream.write_all(&frame[..cut]);
                let _ = self.stream.flush();
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                self.reconnect()?;
                Ok(Delivery::RequestLost)
            }
            FaultAction::StalledFrame => {
                // Header plus half the payload, then silence: only the
                // daemon's read deadline can end this connection.
                let frame = encode(request);
                let cut = 4 + (frame.len() - 4) / 2;
                let _ = self.stream.write_all(&frame[..cut]);
                let _ = self.stream.flush();
                self.wait_for_close()?;
                self.reconnect()?;
                Ok(Delivery::RequestLost)
            }
            FaultAction::OversizedFrame => {
                // A header declaring one byte more than the daemon's cap;
                // it must answer a typed error *without allocating* and
                // close, because resync after a length violation is
                // impossible.
                let bogus = ((self.max_frame_len + 1) as u32).to_be_bytes();
                let _ = self.stream.write_all(&bogus);
                let _ = self.stream.flush();
                self.oversized_sent += 1;
                match read_frame(&mut self.stream) {
                    Ok(Response::Error { .. }) => {}
                    other => return Err(format!("oversized frame answered {other:?}, want Error")),
                }
                self.wait_for_close()?;
                self.reconnect()?;
                Ok(Delivery::RequestLost)
            }
            FaultAction::CorruptFrame => {
                // Correct length, poisoned payload: the stream stays
                // framed, so the daemon must answer an error and *keep*
                // the connection.
                let mut frame = encode(request);
                frame[4] = 0xFF;
                self.stream
                    .write_all(&frame)
                    .map_err(|e| format!("corrupt-frame write failed: {e}"))?;
                self.stream.flush().map_err(|e| e.to_string())?;
                self.corrupt_sent += 1;
                match read_frame(&mut self.stream) {
                    Ok(Response::Error { .. }) => Ok(Delivery::RequestLost),
                    other => Err(format!("corrupt frame answered {other:?}, want Error")),
                }
            }
            _ => {
                write_frame(&mut self.stream, request)
                    .map_err(|e| format!("request write failed: {e}"))?;
                match read_frame(&mut self.stream) {
                    Ok(response) => Ok(Delivery::Reply(response)),
                    Err(crate::wire::FrameError::Eof) | Err(crate::wire::FrameError::Io(_)) => {
                        if !reply_faultable {
                            return Err(format!("reply lost on a non-placement op ({request:?})"));
                        }
                        self.reconnect()?;
                        Ok(Delivery::ReplyLost)
                    }
                    Err(e) => Err(format!("reply decode failed: {e}")),
                }
            }
        }
    }
}

/// Everything the faulted run produced, pre-oracle.
struct FaultedRun {
    trace: Vec<TraceOp>,
    confirmed: u64,
    rejected: u64,
    lost_requests: u64,
    lost_replies: u64,
    reloads_ok: u64,
    reloads_failed: u64,
    retrains_ok: u64,
    retrains_failed: u64,
    outcomes_accepted: u64,
    outcomes_dropped: u64,
    final_stats: StatsSnapshot,
    recorder_dump: String,
    violations: Vec<String>,
}

fn fps_bits(fps: f64) -> u64 {
    fps.to_bits()
}

/// The per-shard conservation oracle: the per-shard active counts must
/// cover every shard, sum to the global active count, and no session may
/// sit in a shard its id does not route to. Only meaningful at quiesce
/// points — between them a placement may land on one shard after another
/// was already read into the snapshot.
fn check_shard_conservation(snapshot: &StatsSnapshot, when: &str, violations: &mut Vec<String>) {
    if snapshot.shard_active_sessions.len() != snapshot.shards {
        violations.push(format!(
            "{when}: {} per-shard counters for {} shards",
            snapshot.shard_active_sessions.len(),
            snapshot.shards
        ));
    }
    let sum: u64 = snapshot.shard_active_sessions.iter().sum();
    if sum != snapshot.active_sessions {
        violations.push(format!(
            "{when}: per-shard active sessions sum to {sum}, global count says {}",
            snapshot.active_sessions
        ));
    }
    if snapshot.shard_misrouted_sessions != 0 {
        violations.push(format!(
            "{when}: {} sessions live in a shard their id does not route to",
            snapshot.shard_misrouted_sessions
        ));
    }
}

/// Record a model version observed on the wire, checking monotonicity.
fn note_version(versions_seen: &mut Vec<u64>, v: u64, violations: &mut Vec<String>) {
    if let Some(&last) = versions_seen.last() {
        if v < last {
            violations.push(format!("model version rolled back: {last} -> {v}"));
        }
    }
    versions_seen.push(v);
}

/// Drive the op mix against the daemon with fault injection, drain, run
/// the stats oracles, and shut the daemon down.
fn faulted_run(config: &ChaosConfig, injector: Arc<FaultInjector>) -> Result<FaultedRun, String> {
    let model = ModelHandle::load(&config.artifact)
        .map_err(|e| format!("loading {} failed: {e}", config.artifact.display()))?;
    let daemon_config = DaemonConfig {
        bind: "127.0.0.1:0".into(),
        n_servers: config.n_servers,
        // One worker and two shards: the sequential runner keeps at most
        // one request in flight, so the two-phase admit never races (its
        // epoch checks always pass) and every decision stays seed-pure —
        // while the shard routing, id interleaving and per-shard rollback
        // paths are all exercised under fault injection.
        workers: 1,
        shards: 2,
        queue_capacity: 64,
        read_timeout: config.read_timeout,
        max_frame_len: 1024,
        qos: config.qos,
        print_stats_on_shutdown: false,
        fault: Some(injector.clone()),
        // Retrains fire only through explicit TriggerRetrain ops, decided
        // client-side on the fault stream — a drift-tripped auto-retrain
        // would fire at a wall-clock-dependent point and break determinism.
        feedback: FeedbackConfig {
            auto_retrain: false,
            min_retrain_samples: 1,
            ..FeedbackConfig::default()
        },
        ..Default::default()
    };
    let max_frame_len = daemon_config.max_frame_len;
    let handle = daemon::start(daemon_config, model).map_err(|e| format!("start failed: {e}"))?;
    let mut runner = Runner::new(handle.local_addr(), injector, max_frame_len)?;

    let mut op_rng = rng_for(config.seed, &[CHAOS_CTX]);
    let mut violations: Vec<String> = Vec::new();
    let mut trace: Vec<TraceOp> = Vec::new();
    // Confirmed sessions as (runner-assigned logical id, wire session id,
    // predicted-fps bits); wire ids are not comparable across runs
    // (rolled-back admissions consume them), logical ids are. The fps bits
    // seed deterministic outcome reports.
    let mut live: Vec<(u64, u64, u64)> = Vec::new();
    let mut next_logical = 0u64;
    let mut versions_seen: Vec<u64> = Vec::new();

    let mut run = FaultedRun {
        trace: Vec::new(),
        confirmed: 0,
        rejected: 0,
        lost_requests: 0,
        lost_replies: 0,
        reloads_ok: 0,
        reloads_failed: 0,
        retrains_ok: 0,
        retrains_failed: 0,
        outcomes_accepted: 0,
        outcomes_dropped: 0,
        final_stats: StatsSnapshot::default(),
        recorder_dump: String::new(),
        violations: Vec::new(),
    };

    let draw_placement = |rng: &mut rand_chacha::ChaCha8Rng, config: &ChaosConfig| {
        let game = config.games[rng.gen_range(0..config.games.len())];
        let resolution = config.resolutions[rng.gen_range(0..config.resolutions.len())];
        (game, resolution)
    };

    for _ in 0..config.ops {
        let roll: f64 = op_rng.gen();
        if roll < 0.34 {
            // Place one session.
            let (game, resolution) = draw_placement(&mut op_rng, config);
            match runner.send_op(&Request::Place { game, resolution }, true)? {
                Delivery::Reply(Response::Placed {
                    session,
                    server,
                    predicted_fps,
                    model_version,
                }) => {
                    note_version(&mut versions_seen, model_version, &mut violations);
                    let logical = next_logical;
                    next_logical += 1;
                    live.push((logical, session, fps_bits(predicted_fps)));
                    run.confirmed += 1;
                    trace.push(TraceOp::Place {
                        game,
                        resolution,
                        outcome: PlaceOutcome::Placed {
                            logical,
                            server,
                            fps: fps_bits(predicted_fps),
                        },
                    });
                }
                Delivery::Reply(Response::Rejected { .. }) => {
                    run.rejected += 1;
                    trace.push(TraceOp::Place {
                        game,
                        resolution,
                        outcome: PlaceOutcome::Rejected,
                    });
                }
                Delivery::Reply(other) => {
                    violations.push(format!("place answered {other:?}"));
                }
                Delivery::RequestLost => run.lost_requests += 1,
                Delivery::ReplyLost => run.lost_replies += 1,
            }
        } else if roll < 0.48 {
            // Place a small batch.
            let n = op_rng.gen_range(2..=3usize);
            let reqs: Vec<WirePlacement> = (0..n)
                .map(|_| draw_placement(&mut op_rng, config))
                .collect();
            let request = Request::PlaceBatch {
                requests: reqs.clone(),
            };
            match runner.send_op(&request, true)? {
                Delivery::Reply(Response::PlacedBatch {
                    model_version,
                    results,
                }) => {
                    note_version(&mut versions_seen, model_version, &mut violations);
                    let mut outcomes = Vec::with_capacity(results.len());
                    for result in &results {
                        match result {
                            BatchPlaceResult::Placed {
                                session,
                                server,
                                predicted_fps,
                            } => {
                                let logical = next_logical;
                                next_logical += 1;
                                live.push((logical, *session, fps_bits(*predicted_fps)));
                                run.confirmed += 1;
                                outcomes.push(PlaceOutcome::Placed {
                                    logical,
                                    server: *server,
                                    fps: fps_bits(*predicted_fps),
                                });
                            }
                            BatchPlaceResult::Rejected { .. } => {
                                run.rejected += 1;
                                outcomes.push(PlaceOutcome::Rejected);
                            }
                        }
                    }
                    trace.push(TraceOp::Batch { reqs, outcomes });
                }
                Delivery::Reply(other) => {
                    violations.push(format!("place_batch answered {other:?}"));
                }
                Delivery::RequestLost => run.lost_requests += 1,
                Delivery::ReplyLost => run.lost_replies += 1,
            }
        } else if roll < 0.62 && !live.is_empty() {
            // Depart a random live session. The emptiness check is
            // seed-deterministic (live contents are a function of the fault
            // schedule), so the draw sequence stays reproducible.
            let idx = op_rng.gen_range(0..live.len());
            let (logical, session, fps) = live.swap_remove(idx);
            match runner.send_op(&Request::Depart { session }, false)? {
                Delivery::Reply(Response::Departed { server, .. }) => {
                    trace.push(TraceOp::Depart { logical, server });
                }
                Delivery::Reply(other) => {
                    violations.push(format!("depart of live session answered {other:?}"));
                }
                Delivery::RequestLost => {
                    // Never reached the daemon: the session is still live.
                    live.push((logical, session, fps));
                    run.lost_requests += 1;
                }
                Delivery::ReplyLost => unreachable!("send_op rejects reply loss on departs"),
            }
        } else if roll < 0.74 {
            // Predict against 0–2 co-runners.
            let (game, resolution) = draw_placement(&mut op_rng, config);
            let n_others = op_rng.gen_range(0..=2usize);
            let others: Vec<WirePlacement> = (0..n_others)
                .map(|_| draw_placement(&mut op_rng, config))
                .collect();
            let request = Request::Predict {
                game,
                resolution,
                others: others.clone(),
                qos: config.qos,
            };
            match runner.send_op(&request, false)? {
                Delivery::Reply(Response::Prediction {
                    feasible,
                    degradation,
                    fps,
                    model_version,
                    ..
                }) => {
                    note_version(&mut versions_seen, model_version, &mut violations);
                    trace.push(TraceOp::Predict {
                        game,
                        resolution,
                        others,
                        feasible,
                        degradation: fps_bits(degradation),
                        fps: fps_bits(fps),
                    });
                }
                Delivery::Reply(other) => {
                    violations.push(format!("predict answered {other:?}"));
                }
                Delivery::RequestLost => run.lost_requests += 1,
                Delivery::ReplyLost => unreachable!("send_op rejects reply loss on predicts"),
            }
        } else if roll < 0.86 && !live.is_empty() {
            // Report observed FPS for 1–2 live sessions. Reports are pure
            // bookkeeping for the feedback buffer (chaos retrains append
            // zero trees, so the published model never changes), which is
            // why they stay out of the replay trace. A slice of reports
            // targets a bogus session id on purpose to exercise the
            // dropped path.
            let n = op_rng.gen_range(1..=2usize).min(live.len());
            let latest = versions_seen.last().copied().unwrap_or(1);
            let mut reports = Vec::with_capacity(n);
            for _ in 0..n {
                let (_, session, fps) = live[op_rng.gen_range(0..live.len())];
                let bogus = op_rng.gen::<f64>() < 0.2;
                let predicted = f64::from_bits(fps);
                reports.push(OutcomeReport {
                    session: if bogus { u64::MAX } else { session },
                    observed_fps: predicted * op_rng.gen_range(0.7..1.1),
                    predicted_fps: predicted,
                    model_version: latest,
                });
            }
            let request = if reports.len() == 1 {
                Request::ReportOutcome {
                    report: reports.pop().expect("one report"),
                }
            } else {
                Request::ReportOutcomeBatch { reports }
            };
            match runner.send_op(&request, false)? {
                Delivery::Reply(Response::OutcomeRecorded {
                    accepted, dropped, ..
                }) => {
                    run.outcomes_accepted += accepted;
                    run.outcomes_dropped += dropped;
                }
                Delivery::Reply(other) => {
                    violations.push(format!("report_outcome answered {other:?}"));
                }
                Delivery::RequestLost => run.lost_requests += 1,
                Delivery::ReplyLost => unreachable!("send_op rejects reply loss on reports"),
            }
        } else if roll < 0.93 {
            // Trigger a background retrain. The Retrain injection point
            // decides up front (client-side, so the daemon never draws on
            // the fault stream from its retrainer thread) whether this one
            // demands an unsatisfiable sample floor and fails. Successful
            // retrains append zero extra boosting rounds: the republished
            // model is bit-identical, so swap timing cannot perturb any
            // placement decision the replay will check.
            let fail = runner.injector.decide(InjectionPoint::Retrain) == FaultAction::FailRetrain;
            let before = runner.raw_stats()?;
            let expect_ok = !fail && before.feedback_buffered > 0;
            let min_samples = if fail { Some(u64::MAX) } else { None };
            let request = Request::TriggerRetrain {
                min_samples,
                extra_rounds: Some(0),
            };
            match runner.send_op(&request, false)? {
                Delivery::Reply(Response::RetrainQueued { queued: true }) => {
                    // The retrainer runs asynchronously; wait for this job
                    // to settle so the model version is deterministic
                    // before the next op. Stats polling is control-plane
                    // and never draws on the fault stream.
                    let target = before.retrains_ok + before.retrains_failed + 1;
                    let deadline = Instant::now() + Duration::from_secs(30);
                    let snap = loop {
                        let snap = runner.raw_stats()?;
                        if snap.retrains_ok + snap.retrains_failed >= target {
                            break snap;
                        }
                        if Instant::now() > deadline {
                            return Err("retrain did not settle within 30s".into());
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    };
                    if expect_ok {
                        if snap.retrains_ok == before.retrains_ok + 1 {
                            run.retrains_ok += 1;
                            note_version(&mut versions_seen, snap.model_version, &mut violations);
                        } else {
                            violations.push(format!(
                                "retrain over {} buffered outcomes failed",
                                before.feedback_buffered
                            ));
                        }
                    } else {
                        if snap.retrains_failed == before.retrains_failed + 1 {
                            run.retrains_failed += 1;
                        } else {
                            violations.push(
                                "a retrain that cannot meet its sample floor succeeded".into(),
                            );
                        }
                        if snap.model_version != before.model_version {
                            violations.push(format!(
                                "failed retrain bumped the model version: v{} -> v{}",
                                before.model_version, snap.model_version
                            ));
                        }
                    }
                }
                Delivery::Reply(Response::RetrainQueued { queued: false }) => {
                    violations.push("daemon refused to queue a retrain".into());
                }
                Delivery::Reply(other) => {
                    violations.push(format!("trigger_retrain answered {other:?}"));
                }
                Delivery::RequestLost => run.lost_requests += 1,
                Delivery::ReplyLost => unreachable!("send_op rejects reply loss on retrains"),
            }
        } else {
            // Hot reload; the Reload injection point decides up front
            // whether this one targets a nonexistent artifact.
            let fail = runner.injector.decide(InjectionPoint::Reload) == FaultAction::FailReload;
            let path = fail.then(|| "/nonexistent/gaugur-chaos/model.json".to_string());
            match runner.send_op(&Request::ReloadModel { path }, false)? {
                Delivery::Reply(Response::Reloaded { version }) => {
                    if fail {
                        violations.push(format!(
                            "reload of a nonexistent artifact answered Reloaded v{version}"
                        ));
                    } else {
                        note_version(&mut versions_seen, version, &mut violations);
                        run.reloads_ok += 1;
                    }
                }
                Delivery::Reply(Response::Error { message }) => {
                    if fail {
                        run.reloads_failed += 1;
                    } else {
                        violations.push(format!("clean reload answered Error: {message}"));
                    }
                }
                Delivery::Reply(other) => {
                    violations.push(format!("reload answered {other:?}"));
                }
                Delivery::RequestLost => run.lost_requests += 1,
                Delivery::ReplyLost => unreachable!("send_op rejects reply loss on reloads"),
            }
        }
    }

    // Drain every confirmed session (no injection: the drain is
    // bookkeeping, not part of the scenario).
    while let Some((logical, session, _)) = live.pop() {
        match runner.raw_call(&Request::Depart { session })? {
            Response::Departed { server, .. } => trace.push(TraceOp::Depart { logical, server }),
            other => violations.push(format!("drain depart answered {other:?}")),
        }
    }

    // Stats oracles against the live daemon, post-drain.
    let snapshot = runner.raw_stats()?;
    if snapshot.placements_admitted != run.confirmed + snapshot.placements_rolled_back {
        violations.push(format!(
            "placement conservation broken: admitted {} != confirmed {} + rolled back {}",
            snapshot.placements_admitted, run.confirmed, snapshot.placements_rolled_back
        ));
    }
    if snapshot.active_sessions != 0 {
        violations.push(format!(
            "leaked placements: {} sessions active after full drain",
            snapshot.active_sessions
        ));
    }
    if snapshot.malformed_frames != runner.corrupt_sent + runner.oversized_sent {
        violations.push(format!(
            "malformed accounting: daemon counted {}, client sent {} corrupt + {} oversized",
            snapshot.malformed_frames, runner.corrupt_sent, runner.oversized_sent
        ));
    }
    if snapshot.model_version != 1 + run.reloads_ok + run.retrains_ok {
        violations.push(format!(
            "version arithmetic: v{} after {} successful reloads + {} successful retrains \
             (want v{})",
            snapshot.model_version,
            run.reloads_ok,
            run.retrains_ok,
            1 + run.reloads_ok + run.retrains_ok
        ));
    }
    if snapshot.feedback_accepted != run.outcomes_accepted
        || snapshot.feedback_dropped != run.outcomes_dropped
    {
        violations.push(format!(
            "outcome accounting: daemon accepted {} / dropped {}, client was acked {} / {}",
            snapshot.feedback_accepted,
            snapshot.feedback_dropped,
            run.outcomes_accepted,
            run.outcomes_dropped
        ));
    }
    if snapshot.feedback_accepted != snapshot.feedback_buffered + snapshot.feedback_evicted {
        violations.push(format!(
            "feedback conservation broken: accepted {} != buffered {} + evicted {}",
            snapshot.feedback_accepted, snapshot.feedback_buffered, snapshot.feedback_evicted
        ));
    }
    if snapshot.retrains_ok != run.retrains_ok || snapshot.retrains_failed != run.retrains_failed {
        violations.push(format!(
            "retrain accounting: daemon counted {}ok/{}f, client observed {}ok/{}f",
            snapshot.retrains_ok, snapshot.retrains_failed, run.retrains_ok, run.retrains_failed
        ));
    }
    let connects = runner.connects;
    if snapshot.connections_accepted != connects {
        violations.push(format!(
            "accept accounting: daemon accepted {}, client connected {} times",
            snapshot.connections_accepted, connects
        ));
    }
    // Per-stage tracing must reconcile exactly even under injected faults:
    // every handled request — including those whose replies were dropped,
    // torn, or stalled — holds exactly one sample in each request stage.
    if let Err(v) = crate::trace::verify_stage_accounting(&snapshot) {
        violations.push(format!("stage accounting (post-drain): {v}"));
    }
    check_shard_conservation(
        &snapshot,
        "shard conservation (post-drain)",
        &mut violations,
    );

    // Snapshot the flight recorder's deterministic view before shutdown.
    // `run_scenario` demands these bytes identical to the fault-free
    // replay's dump: admissions whose replies were lost were rolled back,
    // so they appear in neither.
    match runner.raw_call(&Request::DumpRecorder {
        deterministic: true,
    })? {
        Response::RecorderDump {
            jsonl, truncated, ..
        } => {
            if truncated {
                violations.push("recorder dump truncated: ring too small for the scenario".into());
            }
            run.recorder_dump = jsonl;
        }
        other => violations.push(format!("dump_recorder answered {other:?}")),
    }

    // Graceful shutdown must finish in-flight work and close every
    // connection — including the runner's, dropped here.
    drop(runner);
    let final_stats = handle.shutdown();
    if final_stats.connections_closed != connects {
        violations.push(format!(
            "close accounting after shutdown: closed {}, accepted {}",
            final_stats.connections_closed, connects
        ));
    }
    if final_stats.active_sessions != 0 {
        violations.push(format!(
            "leaked placements after shutdown: {}",
            final_stats.active_sessions
        ));
    }
    if let Err(v) = crate::trace::verify_stage_accounting(&final_stats) {
        violations.push(format!("stage accounting (after shutdown): {v}"));
    }
    check_shard_conservation(
        &final_stats,
        "shard conservation (after shutdown)",
        &mut violations,
    );

    run.trace = trace;
    run.final_stats = final_stats;
    run.violations = violations;
    Ok(run)
}

/// Replay the surviving operations against a fresh fault-free daemon and
/// demand bit-identical decisions. Lost operations were net no-ops (rolled
/// back or never parsed), so the fleet trajectories must coincide exactly.
/// Returns `(replayed, violations, deterministic recorder dump)`.
fn replay(config: &ChaosConfig, trace: &[TraceOp]) -> Result<(u64, Vec<String>, String), String> {
    let model = ModelHandle::load(&config.artifact).map_err(|e| format!("replay load: {e}"))?;
    let daemon_config = DaemonConfig {
        bind: "127.0.0.1:0".into(),
        n_servers: config.n_servers,
        // Identical threading and shard layout to the faulted run: replay
        // demands bit-identical decisions, so the fleets must partition
        // (and mint session ids) exactly the same way.
        workers: 1,
        shards: 2,
        queue_capacity: 64,
        read_timeout: config.read_timeout,
        max_frame_len: 1024,
        qos: config.qos,
        print_stats_on_shutdown: false,
        fault: None,
        feedback: FeedbackConfig {
            auto_retrain: false,
            min_retrain_samples: 1,
            ..FeedbackConfig::default()
        },
        ..Default::default()
    };
    let handle =
        daemon::start(daemon_config, model).map_err(|e| format!("replay start failed: {e}"))?;
    let mut stream = connect(handle.local_addr(), Duration::from_secs(10))?;
    let mut call = |request: &Request| -> Result<Response, String> {
        write_frame(&mut stream, request).map_err(|e| format!("replay write: {e}"))?;
        read_frame(&mut stream).map_err(|e| format!("replay read: {e}"))
    };

    let mut violations = Vec::new();
    let mut sessions: HashMap<u64, u64> = HashMap::new();
    let mut replayed = 0u64;
    let check_place = |expected: &PlaceOutcome,
                       got_server: usize,
                       got_fps: f64,
                       label: &str,
                       violations: &mut Vec<String>|
     -> Option<u64> {
        match expected {
            PlaceOutcome::Placed {
                server,
                fps,
                logical,
            } => {
                if got_server != *server || fps_bits(got_fps) != *fps {
                    violations.push(format!(
                        "{label} diverged: faulted run chose server {server} fps bits {fps:016x}, \
                         replay chose server {got_server} fps bits {:016x}",
                        fps_bits(got_fps)
                    ));
                }
                Some(*logical)
            }
            PlaceOutcome::Rejected => {
                violations.push(format!("{label}: faulted run rejected, replay placed"));
                None
            }
        }
    };

    for op in trace {
        replayed += 1;
        match op {
            TraceOp::Place {
                game,
                resolution,
                outcome,
            } => match call(&Request::Place {
                game: *game,
                resolution: *resolution,
            })? {
                Response::Placed {
                    session,
                    server,
                    predicted_fps,
                    ..
                } => {
                    if let Some(logical) =
                        check_place(outcome, server, predicted_fps, "place", &mut violations)
                    {
                        sessions.insert(logical, session);
                    }
                }
                Response::Rejected { .. } => {
                    if *outcome != PlaceOutcome::Rejected {
                        violations.push("place: faulted run placed, replay rejected".into());
                    }
                }
                other => return Err(format!("replay place answered {other:?}")),
            },
            TraceOp::Batch { reqs, outcomes } => match call(&Request::PlaceBatch {
                requests: reqs.clone(),
            })? {
                Response::PlacedBatch { results, .. } => {
                    if results.len() != outcomes.len() {
                        violations.push(format!(
                            "batch cardinality diverged: {} vs {}",
                            outcomes.len(),
                            results.len()
                        ));
                        continue;
                    }
                    for (expected, result) in outcomes.iter().zip(&results) {
                        match result {
                            BatchPlaceResult::Placed {
                                session,
                                server,
                                predicted_fps,
                            } => {
                                if let Some(logical) = check_place(
                                    expected,
                                    *server,
                                    *predicted_fps,
                                    "batch item",
                                    &mut violations,
                                ) {
                                    sessions.insert(logical, *session);
                                }
                            }
                            BatchPlaceResult::Rejected { .. } => {
                                if *expected != PlaceOutcome::Rejected {
                                    violations.push(
                                        "batch item: faulted run placed, replay rejected".into(),
                                    );
                                }
                            }
                        }
                    }
                }
                other => return Err(format!("replay batch answered {other:?}")),
            },
            TraceOp::Depart { logical, server } => {
                let Some(session) = sessions.remove(logical) else {
                    violations.push(format!("depart of unmapped logical session {logical}"));
                    continue;
                };
                match call(&Request::Depart { session })? {
                    Response::Departed {
                        server: got_server, ..
                    } => {
                        if got_server != *server {
                            violations.push(format!(
                                "depart diverged: freed server {got_server}, faulted run freed {server}"
                            ));
                        }
                    }
                    other => return Err(format!("replay depart answered {other:?}")),
                }
            }
            TraceOp::Predict {
                game,
                resolution,
                others,
                feasible,
                degradation,
                fps,
            } => match call(&Request::Predict {
                game: *game,
                resolution: *resolution,
                others: others.clone(),
                qos: config.qos,
            })? {
                Response::Prediction {
                    feasible: got_feasible,
                    degradation: got_degradation,
                    fps: got_fps,
                    ..
                } => {
                    if got_feasible != *feasible
                        || fps_bits(got_degradation) != *degradation
                        || fps_bits(got_fps) != *fps
                    {
                        violations.push(format!(
                            "predict diverged for game {} at {resolution:?} vs {others:?}",
                            game.0
                        ));
                    }
                }
                other => return Err(format!("replay predict answered {other:?}")),
            },
        }
    }

    // The trace ends fully drained, so the replay fleet must be empty too.
    match call(&Request::Stats)? {
        Response::Stats(snapshot) => {
            if snapshot.active_sessions != 0 {
                violations.push(format!(
                    "replay leaked {} sessions after the drained trace",
                    snapshot.active_sessions
                ));
            }
        }
        other => return Err(format!("replay stats answered {other:?}")),
    }
    let dump = match call(&Request::DumpRecorder {
        deterministic: true,
    })? {
        Response::RecorderDump { jsonl, .. } => jsonl,
        other => return Err(format!("replay dump_recorder answered {other:?}")),
    };
    drop(stream);
    handle.shutdown();
    Ok((replayed, violations, dump))
}

/// Run one seeded scenario end to end: faulted run, stats oracles, then the
/// byte-identical replay. Never panics on oracle violations — they come
/// back in the report.
pub fn run_scenario(config: &ChaosConfig) -> ScenarioReport {
    let mut plan = config.plan;
    plan.seed = config.seed;
    let injector = Arc::new(FaultInjector::new(plan));

    let mut report = ScenarioReport {
        seed: config.seed,
        events: Vec::new(),
        confirmed: 0,
        rejected: 0,
        lost_requests: 0,
        lost_replies: 0,
        reloads_ok: 0,
        reloads_failed: 0,
        retrains_ok: 0,
        retrains_failed: 0,
        outcomes_accepted: 0,
        outcomes_dropped: 0,
        replayed: 0,
        decision_digest: 0,
        final_stats: StatsSnapshot::default(),
        recorder_dump: String::new(),
        violations: Vec::new(),
    };

    match faulted_run(config, injector.clone()) {
        Ok(run) => {
            report.confirmed = run.confirmed;
            report.rejected = run.rejected;
            report.lost_requests = run.lost_requests;
            report.lost_replies = run.lost_replies;
            report.reloads_ok = run.reloads_ok;
            report.reloads_failed = run.reloads_failed;
            report.retrains_ok = run.retrains_ok;
            report.retrains_failed = run.retrains_failed;
            report.outcomes_accepted = run.outcomes_accepted;
            report.outcomes_dropped = run.outcomes_dropped;
            report.final_stats = run.final_stats;
            report.recorder_dump = run.recorder_dump;
            report.violations = run.violations;
            let mut h = DefaultHasher::new();
            for op in &run.trace {
                format!("{op:?}").hash(&mut h);
            }
            report.decision_digest = h.finish();
            match replay(config, &run.trace) {
                Ok((replayed, mut replay_violations, replay_dump)) => {
                    report.replayed = replayed;
                    report.violations.append(&mut replay_violations);
                    if replay_dump != report.recorder_dump {
                        report.violations.push(format!(
                            "recorder dump diverged: faulted run {} bytes, fault-free replay \
                             {} bytes",
                            report.recorder_dump.len(),
                            replay_dump.len()
                        ));
                    }
                }
                Err(e) => report.violations.push(format!("replay harness error: {e}")),
            }
        }
        Err(e) => report.violations.push(format!("harness error: {e}")),
    }
    report.events = injector.events();
    report
}

/// Run `scenarios` consecutive seeds starting at `base.seed`, returning one
/// report per seed.
pub fn run_suite(base: &ChaosConfig, scenarios: u64) -> Vec<ScenarioReport> {
    (0..scenarios)
        .map(|i| {
            let mut config = base.clone();
            config.seed = base.seed + i;
            run_scenario(&config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_core::{ColocationPlan, GAugur, GAugurConfig};
    use gaugur_gamesim::{GameCatalog, Server};
    use std::sync::OnceLock;

    fn artifact() -> PathBuf {
        static PATH: OnceLock<PathBuf> = OnceLock::new();
        PATH.get_or_init(|| {
            let server = Server::reference(7);
            let catalog = GameCatalog::generate(42, 6);
            let config = GAugurConfig {
                plan: ColocationPlan {
                    pairs: 24,
                    triples: 6,
                    quads: 3,
                    seed: 3,
                },
                ..Default::default()
            };
            let model = GAugur::build(&server, &catalog, config);
            let dir =
                std::env::temp_dir().join(format!("gaugur-chaos-unit-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("model.json");
            model.save_json(&path).unwrap();
            path
        })
        .clone()
    }

    fn small_config(seed: u64) -> ChaosConfig {
        let mut config = ChaosConfig::for_seed(seed, artifact(), (0..6).map(GameId).collect());
        config.ops = 15;
        config
    }

    #[test]
    fn a_quiet_scenario_passes_every_oracle() {
        let mut config = small_config(11);
        config.plan = FaultPlan::quiet(11);
        let report = run_scenario(&config);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.lost_requests + report.lost_replies, 0);
        assert!(report.confirmed > 0, "quiet run placed nothing");
        assert!(report.replayed > 0, "nothing survived to replay");
    }

    #[test]
    fn recorder_dump_is_nonempty_schema_valid_and_survives_faults() {
        // run_scenario itself byte-compares the faulted dump against the
        // fault-free replay's — a divergence would fail passed(). Here we
        // additionally check the dump carries real events and every line
        // is valid standalone JSON.
        let report = run_scenario(&small_config(23));
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(
            !report.recorder_dump.is_empty(),
            "a scenario with confirmed placements must record admits"
        );
        for line in report.recorder_dump.lines() {
            let parsed = serde_json::parse_value_str(line);
            assert!(parsed.is_ok(), "unparseable dump line: {line}");
            assert!(
                line.contains("\"kind\":\"admit\"") || line.contains("\"kind\":\"depart\""),
                "deterministic dump leaked a non-deterministic event: {line}"
            );
        }
    }

    #[test]
    fn the_same_seed_reproduces_events_and_digest() {
        let config = small_config(5);
        let a = run_scenario(&config);
        let b = run_scenario(&config);
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert_eq!(a.events, b.events, "fault schedule must be seed-pure");
        assert_eq!(a.digest(), b.digest(), "report digest must be seed-pure");
    }

    #[test]
    fn the_op_stream_is_independent_of_the_fault_stream() {
        // The op mix draws from CHAOS_CTX, faults from FAULT_CTX: the same
        // seed must produce different streams, or fault decisions would
        // warp which operations run.
        let mut ops = rng_for(9, &[CHAOS_CTX]);
        let mut faults = rng_for(9, &[crate::fault::FAULT_CTX]);
        let same = (0..64).all(|_| ops.gen::<u64>() == faults.gen::<u64>());
        assert!(!same);
    }
}
