//! Deterministic Poisson load driver for the placement daemon.
//!
//! Each connection thread generates its own arrival stream from a seeded
//! ChaCha8 RNG (`rng_for(seed, [LOAD_CTX, thread])`), so the *sequence* of
//! requests — which games arrive, at which resolutions, how long each
//! session lives — is a pure function of the seed, independently of wire
//! timing. Session lifetimes are measured in subsequent arrivals on the same
//! thread (not wall time), which keeps closed-loop benchmarking and
//! rate-paced runs equally deterministic.

use crate::client::{Client, ClientError, RetryPolicy};
use crate::slo::AlertState;
use crate::wire::{BatchPlaceResult, OutcomeReport, WirePlacement};
use gaugur_gamesim::rng::rng_for;
use gaugur_gamesim::{GameId, Resolution};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

const LOAD_CTX: u64 = 0x4C4F_4144; // "LOAD"
const RETRY_CTX: u64 = 0x5254_5259; // "RTRY"
const NOISE_CTX: u64 = 0x4E4F_4953; // "NOIS"

/// Bounded retries on `Overloaded` pushback before giving up on an arrival.
const MAX_OVERLOAD_RETRIES: u32 = 4;

/// Load-driver configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address, e.g. `127.0.0.1:7071`.
    pub addr: String,
    /// Seed for the arrival streams.
    pub seed: u64,
    /// Parallel client connections (threads).
    pub connections: usize,
    /// Total `Place` attempts across all connections.
    pub requests: u64,
    /// Target aggregate arrival rate (requests/s). `f64::INFINITY` runs
    /// closed-loop: each thread issues its next arrival immediately.
    pub rate: f64,
    /// Mean session lifetime, in subsequent arrivals on the same thread
    /// (exponentially distributed, minimum 1).
    pub mean_session_arrivals: f64,
    /// Games to draw arrivals from (uniformly).
    pub games: Vec<GameId>,
    /// Resolutions to draw arrivals from (uniformly).
    pub resolutions: Vec<Resolution>,
    /// QoS floor: a placement whose predicted FPS falls below this counts as
    /// a violation in the report.
    pub qos: f64,
    /// Arrivals grouped into one `PlaceBatch` frame (1 = one `Place` per
    /// arrival; latency is then sampled per frame, not per arrival).
    pub batch: usize,
    /// Report a simulated observed frame rate for every placed session,
    /// closing the feedback loop (`ReportOutcome` / `ReportOutcomeBatch`).
    pub report_outcomes: bool,
    /// Multiplicative noise amplitude on simulated observations: observed
    /// FPS is drawn uniformly from `predicted × drift × [1−ε, 1+ε]`. Drawn
    /// from its own seeded stream (`NOISE_CTX`), so enabling reports never
    /// perturbs the arrival sequence.
    pub observe_noise: f64,
    /// World-drift multiplier applied to simulated observations; values
    /// away from 1.0 emulate a workload shift the serving model has not
    /// seen, which is what drives the drift detector and retraining.
    pub drift: f64,
    /// After the run, scrape the daemon's stats and check the per-stage
    /// accounting invariant ([`crate::trace::verify_stage_accounting`]):
    /// every request stage must hold exactly one sample per handled request.
    /// The result lands in [`LoadReport::trace_violation`]. Requires the
    /// daemon to be otherwise idle once the run drains (true for tests and
    /// benches; leave off when other clients share the daemon).
    pub verify_trace: bool,
    /// After the run, scrape the daemon's stats and verify its shard
    /// layout: exactly this many placement shards, per-shard active counts
    /// summing to the global count, and zero misrouted sessions. `None`
    /// skips the check. Same quiesce requirement as `verify_trace`; the
    /// result lands in [`LoadReport::shard_violation`].
    pub expect_shards: Option<usize>,
    /// After the run, fetch the daemon's SLO report and demand the fleet
    /// alert state reached *at least* this severity. `Some(AlertState::Ok)`
    /// just scrapes and records the state; `Some(AlertState::Critical)` is
    /// how CI asserts an injected QoS violation actually fired the alert.
    /// The result lands in [`LoadReport::slo_state`] /
    /// [`LoadReport::slo_violation`].
    pub expect_slo: Option<AlertState>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7071".into(),
            seed: 7,
            connections: 4,
            requests: 1000,
            rate: f64::INFINITY,
            mean_session_arrivals: 8.0,
            games: (0..16).map(GameId).collect(),
            resolutions: vec![Resolution::Hd720, Resolution::Fhd1080],
            qos: 60.0,
            batch: 1,
            report_outcomes: false,
            observe_noise: 0.05,
            drift: 1.0,
            verify_trace: false,
            expect_shards: None,
            expect_slo: None,
        }
    }
}

/// What one run of the driver observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Sessions successfully placed.
    pub placed: u64,
    /// Placements refused by the policy (fleet saturated).
    pub rejected: u64,
    /// `Overloaded` pushbacks received.
    pub overloaded: u64,
    /// Retries issued after `Overloaded` pushback (bounded per arrival; an
    /// arrival that exhausts its retries counts as an error, not a retry).
    pub retries: u64,
    /// Sessions departed (including the end-of-run drain).
    pub departed: u64,
    /// Transport or daemon errors.
    pub errors: u64,
    /// Outcome reports the daemon accepted (when `report_outcomes` is on).
    pub outcomes_reported: u64,
    /// Accepted outcome reports tagged with an outdated model version.
    pub outcomes_stale: u64,
    /// Outcome reports the daemon dropped (e.g. the session had already
    /// departed by the time the report arrived).
    pub outcomes_dropped: u64,
    /// Mean predicted FPS over placed sessions.
    pub mean_predicted_fps: f64,
    /// Fraction of placed sessions predicted below the QoS floor.
    pub violation_rate: f64,
    /// Placement latency percentiles (µs), measured client-side.
    pub p50_us: u64,
    /// 95th percentile placement latency (µs).
    pub p95_us: u64,
    /// 99th percentile placement latency (µs).
    pub p99_us: u64,
    /// Worst placement latency (µs).
    pub max_us: u64,
    /// Place attempts per second of wall time, across all connections.
    pub achieved_rps: f64,
    /// Requests the daemon handled with stage traces, per its post-run
    /// snapshot (0 when `verify_trace` is off or the scrape failed).
    pub traced_requests: u64,
    /// Stage-accounting violation found by the post-run check, if any
    /// (`None` = invariant held, or `verify_trace` was off).
    pub trace_violation: Option<String>,
    /// Shard layout the daemon reported in the post-run scrape (0 when
    /// `expect_shards` was off or the scrape failed).
    pub shards_seen: usize,
    /// Shard-layout violation found by the post-run check, if any (`None` =
    /// layout and conservation held, or `expect_shards` was off).
    pub shard_violation: Option<String>,
    /// Fleet-wide alert state from the post-run SLO scrape (`None` when
    /// `expect_slo` was off or the scrape failed).
    pub slo_state: Option<AlertState>,
    /// SLO expectation failure, if any (`None` = the fleet alert state
    /// reached the expected severity, or `expect_slo` was off).
    pub slo_violation: Option<String>,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "load driver report")?;
        writeln!(f, "  placed:        {}", self.placed)?;
        writeln!(f, "  rejected:      {}", self.rejected)?;
        writeln!(f, "  overloaded:    {}", self.overloaded)?;
        writeln!(f, "  retries:       {}", self.retries)?;
        writeln!(f, "  departed:      {}", self.departed)?;
        writeln!(f, "  errors:        {}", self.errors)?;
        if self.outcomes_reported + self.outcomes_dropped > 0 {
            writeln!(
                f,
                "  outcomes:      {} reported ({} stale) / {} dropped",
                self.outcomes_reported, self.outcomes_stale, self.outcomes_dropped
            )?;
        }
        writeln!(f, "  predicted fps: {:.2} mean", self.mean_predicted_fps)?;
        writeln!(
            f,
            "  violations:    {:.2}% of placements",
            100.0 * self.violation_rate
        )?;
        writeln!(
            f,
            "  place latency: p50 {}µs  p95 {}µs  p99 {}µs  max {}µs",
            self.p50_us, self.p95_us, self.p99_us, self.max_us
        )?;
        writeln!(f, "  throughput:    {:.0} req/s", self.achieved_rps)?;
        match &self.trace_violation {
            Some(v) => writeln!(f, "  tracing:       VIOLATION: {v}")?,
            None if self.traced_requests > 0 => writeln!(
                f,
                "  tracing:       {} requests traced, stage accounting reconciled",
                self.traced_requests
            )?,
            None => {}
        }
        match &self.shard_violation {
            Some(v) => writeln!(f, "  shards:        VIOLATION: {v}")?,
            None if self.shards_seen > 0 => writeln!(
                f,
                "  shards:        {} placement shards, conservation held",
                self.shards_seen
            )?,
            None => {}
        }
        match (&self.slo_violation, self.slo_state) {
            (Some(v), _) => writeln!(f, "  slo:           VIOLATION: {v}"),
            (None, Some(state)) => writeln!(f, "  slo:           fleet alert state {state}"),
            (None, None) => Ok(()),
        }
    }
}

struct ThreadOutcome {
    placed: u64,
    rejected: u64,
    overloaded: u64,
    retries: u64,
    departed: u64,
    errors: u64,
    fps_sum: f64,
    violations: u64,
    latencies_us: Vec<u64>,
    outcomes_reported: u64,
    outcomes_stale: u64,
    outcomes_dropped: u64,
}

/// Simulate the frame rate the session "actually" achieved: the model's
/// prediction, scaled by the configured world drift, with uniform
/// multiplicative noise.
fn observe_fps(noise_rng: &mut ChaCha8Rng, config: &LoadConfig, predicted: f64) -> f64 {
    let eps = config.observe_noise.max(0.0);
    let noise = if eps > 0.0 {
        noise_rng.gen_range(-eps..=eps)
    } else {
        0.0
    };
    predicted * config.drift * (1.0 + noise)
}

/// Send one outcome-report batch, folding the daemon's accounting into the
/// thread's tallies.
fn send_reports(
    client: &mut Client,
    config: &LoadConfig,
    reports: &[OutcomeReport],
    out: &mut ThreadOutcome,
) {
    if reports.is_empty() {
        return;
    }
    let result = if reports.len() == 1 {
        client.report_outcome(reports[0].clone())
    } else {
        client.report_outcomes(reports)
    };
    match result {
        Ok((accepted, stale, dropped)) => {
            out.outcomes_reported += accepted;
            out.outcomes_stale += stale;
            out.outcomes_dropped += dropped;
        }
        Err(e) => {
            out.errors += 1;
            note_error(client, &config.addr, &e);
        }
    }
}

fn exponential(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * mean
}

/// Count an error and, when its outcome is ambiguous (the transport died
/// before a reply — see [`ClientError::is_ambiguous`]), reconnect so the
/// thread keeps going on a fresh stream. Ambiguous failures are *never*
/// retried: a `Place` the daemon may already have applied would double-place
/// on retry. The arrival is simply charged as an error and the run moves on.
fn note_error(client: &mut Client, addr: &str, error: &ClientError) {
    if error.is_ambiguous() {
        if let Ok(fresh) = Client::connect(addr) {
            *client = fresh;
        }
    }
}

/// Issue `op`, retrying (bounded) on `Overloaded` pushback. The daemon
/// answers `Overloaded` at accept time, so the connection was never admitted
/// and each retry reconnects. Sleeps honor the daemon's hint plus jitter
/// drawn from `retry_rng` — a *separate* stream from the arrival RNG, so the
/// request sequence stays a pure function of the seed regardless of how many
/// pushbacks wire timing produces.
fn call_with_retry<T>(
    client: &mut Client,
    addr: &str,
    retry_rng: &mut ChaCha8Rng,
    overloaded: &mut u64,
    retries: &mut u64,
    mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let mut attempts = 0u32;
    loop {
        match op(client) {
            Err(ClientError::Overloaded { retry_after_ms }) => {
                *overloaded += 1;
                if attempts >= MAX_OVERLOAD_RETRIES {
                    return Err(ClientError::Overloaded { retry_after_ms });
                }
                attempts += 1;
                *retries += 1;
                // Jitter de-synchronizes pushed-back threads; the policy
                // caps a hostile hint so it cannot stall the run. One
                // backoff policy for the typed client and the driver keeps
                // their pushback behavior from drifting apart.
                let sleep_ms =
                    RetryPolicy::default().backoff_ms(retry_after_ms, retry_rng.gen::<f64>());
                std::thread::sleep(Duration::from_millis(sleep_ms));
                *client = Client::connect(addr)?;
            }
            other => return other,
        }
    }
}

fn run_thread(config: &LoadConfig, thread: usize, n_arrivals: u64) -> ThreadOutcome {
    let mut out = ThreadOutcome {
        placed: 0,
        rejected: 0,
        overloaded: 0,
        retries: 0,
        departed: 0,
        errors: 0,
        fps_sum: 0.0,
        violations: 0,
        latencies_us: Vec::with_capacity(n_arrivals as usize),
        outcomes_reported: 0,
        outcomes_stale: 0,
        outcomes_dropped: 0,
    };
    let mut rng = rng_for(config.seed, &[LOAD_CTX, thread as u64]);
    let mut retry_rng = rng_for(config.seed, &[LOAD_CTX, thread as u64, RETRY_CTX]);
    let mut noise_rng = rng_for(config.seed, &[LOAD_CTX, thread as u64, NOISE_CTX]);
    let per_thread_rate = config.rate / config.connections.max(1) as f64;
    let batch = config.batch.max(1) as u64;
    // Min-heap of (departure arrival-index, session id).
    let mut departures: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();

    let mut client = match Client::connect(&config.addr) {
        Ok(c) => c,
        Err(_) => {
            out.errors += n_arrivals;
            return out;
        }
    };
    let started = Instant::now();
    let mut next_at = Duration::ZERO;

    let mut i = 0u64;
    while i < n_arrivals {
        let group = batch.min(n_arrivals - i);
        // Draw the whole group *before* any I/O so the request sequence
        // stays a pure function of the seed even when calls fail.
        let mut arrivals: Vec<(GameId, Resolution, u64)> = Vec::with_capacity(group as usize);
        for _ in 0..group {
            let game = config.games[rng.gen_range(0..config.games.len())];
            let resolution = config.resolutions[rng.gen_range(0..config.resolutions.len())];
            let lifetime = exponential(&mut rng, config.mean_session_arrivals)
                .ceil()
                .max(1.0) as u64;
            if per_thread_rate.is_finite() && per_thread_rate > 0.0 {
                next_at += Duration::from_secs_f64(exponential(&mut rng, 1.0 / per_thread_rate));
            }
            arrivals.push((game, resolution, lifetime));
        }
        // A batch frame fires when its *last* arrival is due.
        if per_thread_rate.is_finite() && per_thread_rate > 0.0 {
            if let Some(wait) = next_at.checked_sub(started.elapsed()) {
                std::thread::sleep(wait);
            }
        }

        // Sessions whose lifetime elapsed depart before the new arrivals.
        while let Some(&Reverse((due, session))) = departures.peek() {
            if due > i {
                break;
            }
            departures.pop();
            match client.depart(session) {
                Ok(_) => out.departed += 1,
                Err(e) => {
                    out.errors += 1;
                    note_error(&mut client, &config.addr, &e);
                }
            }
        }

        if batch == 1 {
            let (game, resolution, lifetime) = arrivals[0];
            let t0 = Instant::now();
            match call_with_retry(
                &mut client,
                &config.addr,
                &mut retry_rng,
                &mut out.overloaded,
                &mut out.retries,
                |c| c.place(game, resolution),
            ) {
                Ok(placed) => {
                    out.latencies_us.push(t0.elapsed().as_micros() as u64);
                    out.placed += 1;
                    out.fps_sum += placed.predicted_fps;
                    if placed.predicted_fps < config.qos {
                        out.violations += 1;
                    }
                    departures.push(Reverse((i + lifetime, placed.session)));
                    if config.report_outcomes {
                        let report = OutcomeReport {
                            session: placed.session,
                            observed_fps: observe_fps(&mut noise_rng, config, placed.predicted_fps),
                            predicted_fps: placed.predicted_fps,
                            model_version: placed.model_version,
                        };
                        send_reports(&mut client, config, &[report], &mut out);
                    }
                }
                Err(ClientError::Rejected { .. }) => {
                    out.latencies_us.push(t0.elapsed().as_micros() as u64);
                    out.rejected += 1;
                }
                Err(e) => {
                    out.errors += 1;
                    note_error(&mut client, &config.addr, &e);
                }
            }
        } else {
            let wire: Vec<WirePlacement> = arrivals.iter().map(|&(g, r, _)| (g, r)).collect();
            let t0 = Instant::now();
            match call_with_retry(
                &mut client,
                &config.addr,
                &mut retry_rng,
                &mut out.overloaded,
                &mut out.retries,
                |c| c.place_batch(&wire),
            ) {
                Ok((version, results)) => {
                    // One latency sample per frame, not per arrival.
                    out.latencies_us.push(t0.elapsed().as_micros() as u64);
                    let mut reports: Vec<OutcomeReport> = Vec::new();
                    for (k, result) in results.iter().enumerate() {
                        match result {
                            BatchPlaceResult::Placed {
                                session,
                                predicted_fps,
                                ..
                            } => {
                                out.placed += 1;
                                out.fps_sum += predicted_fps;
                                if *predicted_fps < config.qos {
                                    out.violations += 1;
                                }
                                let lifetime = arrivals[k].2;
                                departures.push(Reverse((i + k as u64 + lifetime, *session)));
                                if config.report_outcomes {
                                    reports.push(OutcomeReport {
                                        session: *session,
                                        observed_fps: observe_fps(
                                            &mut noise_rng,
                                            config,
                                            *predicted_fps,
                                        ),
                                        predicted_fps: *predicted_fps,
                                        model_version: version,
                                    });
                                }
                            }
                            BatchPlaceResult::Rejected { .. } => out.rejected += 1,
                        }
                    }
                    send_reports(&mut client, config, &reports, &mut out);
                    out.errors += (wire.len().saturating_sub(results.len())) as u64;
                }
                Err(e) => {
                    out.errors += group;
                    note_error(&mut client, &config.addr, &e);
                }
            }
        }
        i += group;
    }

    // Drain: everything this thread placed departs before it reports, so
    // daemon-side active_sessions reconciles to zero after a full run.
    while let Some(Reverse((_, session))) = departures.pop() {
        match client.depart(session) {
            Ok(_) => out.departed += 1,
            Err(e) => {
                out.errors += 1;
                note_error(&mut client, &config.addr, &e);
            }
        }
    }
    out
}

/// Run the driver against a live daemon and aggregate a [`LoadReport`].
pub fn run(config: &LoadConfig) -> LoadReport {
    assert!(!config.games.is_empty(), "need at least one game");
    assert!(
        !config.resolutions.is_empty(),
        "need at least one resolution"
    );
    let threads = config.connections.max(1);
    let base = config.requests / threads as u64;
    let remainder = config.requests % threads as u64;

    let started = Instant::now();
    let outcomes: Vec<ThreadOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let n = base + u64::from((t as u64) < remainder);
                scope.spawn(move || run_thread(config, t, n))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);

    let mut report = LoadReport::default();
    let mut latencies: Vec<u64> = Vec::new();
    let mut violations = 0u64;
    let mut fps_sum = 0.0;
    for o in outcomes {
        report.placed += o.placed;
        report.rejected += o.rejected;
        report.overloaded += o.overloaded;
        report.retries += o.retries;
        report.departed += o.departed;
        report.errors += o.errors;
        report.outcomes_reported += o.outcomes_reported;
        report.outcomes_stale += o.outcomes_stale;
        report.outcomes_dropped += o.outcomes_dropped;
        fps_sum += o.fps_sum;
        violations += o.violations;
        latencies.extend(o.latencies_us);
    }
    report.mean_predicted_fps = if report.placed > 0 {
        fps_sum / report.placed as f64
    } else {
        0.0
    };
    report.violation_rate = if report.placed > 0 {
        violations as f64 / report.placed as f64
    } else {
        0.0
    };
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * latencies.len() as f64).ceil().max(1.0) as usize;
        latencies[rank.min(latencies.len()) - 1]
    };
    report.p50_us = pct(50.0);
    report.p95_us = pct(95.0);
    report.p99_us = pct(99.0);
    report.max_us = latencies.last().copied().unwrap_or(0);
    report.achieved_rps = (report.placed + report.rejected) as f64 / elapsed;

    if config.verify_trace || config.expect_shards.is_some() {
        // The run has drained: every driver connection is closed, so the
        // daemon is quiesced and the stage-accounting and shard-conservation
        // invariants must hold exactly. (The scrape's own Stats request is
        // excluded from its own snapshot on both the per-op and per-stage
        // side, so it does not skew the checks.)
        match Client::connect(&config.addr).and_then(|mut c| c.stats()) {
            Ok(snap) => {
                if config.verify_trace {
                    report.traced_requests = snap.per_request.values().map(|r| r.total()).sum();
                    report.trace_violation = crate::trace::verify_stage_accounting(&snap).err();
                }
                if let Some(want) = config.expect_shards {
                    report.shards_seen = snap.shards;
                    report.shard_violation = verify_shard_layout(&snap, want).err();
                }
            }
            Err(e) => {
                let msg = format!("stats scrape failed: {e}");
                if config.verify_trace {
                    report.trace_violation = Some(msg.clone());
                }
                if config.expect_shards.is_some() {
                    report.shard_violation = Some(msg);
                }
            }
        }
    }
    if let Some(want) = config.expect_slo {
        match Client::connect(&config.addr).and_then(|mut c| c.slo_status()) {
            Ok(slo) => {
                report.slo_state = Some(slo.state);
                if slo.state < want {
                    report.slo_violation = Some(format!(
                        "fleet alert state {} never reached {want}",
                        slo.state
                    ));
                }
            }
            Err(e) => report.slo_violation = Some(format!("slo scrape failed: {e}")),
        }
    }
    report
}

/// The post-run shard check behind [`LoadConfig::expect_shards`]: the
/// daemon must report exactly the expected number of placement shards, one
/// per-shard counter per shard, per-shard active counts summing to the
/// global count, and zero misrouted sessions.
fn verify_shard_layout(snap: &crate::stats::StatsSnapshot, want: usize) -> Result<(), String> {
    if snap.shards != want {
        return Err(format!(
            "daemon reports {} placement shards, expected {want}",
            snap.shards
        ));
    }
    if snap.shard_active_sessions.len() != snap.shards {
        return Err(format!(
            "{} per-shard counters for {} shards",
            snap.shard_active_sessions.len(),
            snap.shards
        ));
    }
    let sum: u64 = snap.shard_active_sessions.iter().sum();
    if sum != snap.active_sessions {
        return Err(format!(
            "per-shard active sessions sum to {sum}, global count says {}",
            snap.active_sessions
        ));
    }
    if snap.shard_misrouted_sessions != 0 {
        return Err(format!(
            "{} sessions live in a shard their id does not route to",
            snap.shard_misrouted_sessions
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_streams_are_deterministic() {
        let config = LoadConfig::default();
        let mut a = rng_for(config.seed, &[LOAD_CTX, 0]);
        let mut b = rng_for(config.seed, &[LOAD_CTX, 0]);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..config.games.len()),
                b.gen_range(0..config.games.len())
            );
        }
        // Different threads draw different streams.
        let mut c = rng_for(config.seed, &[LOAD_CTX, 1]);
        let same = (0..100).all(|_| {
            let mut a = rng_for(config.seed, &[LOAD_CTX, 0]);
            a.gen_range(0..1000) == c.gen_range(0..1000)
        });
        assert!(!same);
    }

    #[test]
    fn retry_jitter_uses_a_separate_stream() {
        // Retry sleeps must not consume arrival-stream randomness, or wire
        // timing would change which games arrive.
        let config = LoadConfig::default();
        let mut arrivals = rng_for(config.seed, &[LOAD_CTX, 0]);
        let mut retry = rng_for(config.seed, &[LOAD_CTX, 0, RETRY_CTX]);
        let same = (0..100).all(|_| arrivals.gen::<u64>() == retry.gen::<u64>());
        assert!(!same);
    }

    #[test]
    fn observation_noise_uses_a_separate_stream_and_respects_drift() {
        // Enabling outcome reports must not perturb the arrival sequence.
        let config = LoadConfig::default();
        let mut arrivals = rng_for(config.seed, &[LOAD_CTX, 0]);
        let mut noise = rng_for(config.seed, &[LOAD_CTX, 0, NOISE_CTX]);
        let same = (0..100).all(|_| arrivals.gen::<u64>() == noise.gen::<u64>());
        assert!(!same);

        // Observations track predicted × drift within the noise envelope.
        let mut config = LoadConfig {
            drift: 0.8,
            observe_noise: 0.05,
            ..LoadConfig::default()
        };
        let mut rng = rng_for(config.seed, &[LOAD_CTX, 0, NOISE_CTX]);
        for _ in 0..200 {
            let obs = observe_fps(&mut rng, &config, 100.0);
            assert!((76.0..=84.0).contains(&obs), "{obs}");
        }
        // Zero noise is exact.
        config.observe_noise = 0.0;
        assert_eq!(observe_fps(&mut rng, &config, 50.0), 40.0);
    }

    #[test]
    fn exponential_has_roughly_the_requested_mean() {
        let mut rng = rng_for(1, &[LOAD_CTX, 99]);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 8.0)).sum::<f64>() / n as f64;
        assert!((mean - 8.0).abs() < 0.5, "mean {mean}");
    }
}
