//! Always-on flight recorder: the last N structured events per worker, in
//! lock-free rings, snapshotted to JSONL when something goes wrong.
//!
//! Counters say *how much*; the recorder says *what, in order*. Every
//! confirmed admission, depart, rollback, reload, retrain, injected fault
//! and alert transition lands as one compact event (a kind code plus five
//! `u64` payload words) in the recording worker's ring — single writer per
//! ring, relaxed stores sealed by a release-stamped sequence number, no
//! locks on the hot path. Rare cross-thread events (retrains from the
//! retrainer thread, alert transitions from whichever thread evaluated the
//! SLO engine) go to a small mutex-guarded control ring instead; both feed
//! one global sequence so a dump interleaves them in causal order.
//!
//! Dumps come in two flavors:
//!
//! - **Operator** (`deterministic = false`): every event with its sequence
//!   number, timestamp and source ring — for reading an incident.
//! - **Deterministic** (`deterministic = true`): only the event kinds whose
//!   occurrence and payload are a pure function of the confirmed operation
//!   stream — admissions whose reply was delivered, and departs — with
//!   run-varying fields (sequence, time, session id, model version) struck
//!   and lines renumbered by position. Two runs that confirm the same
//!   operations byte-for-byte produce byte-identical deterministic dumps;
//!   the chaos harness holds a faulted run and its fault-free replay to
//!   exactly that standard. Session ids are struck because rolled-back
//!   admissions consume them (runs with different fault schedules mint
//!   different ids for the same surviving session); shard and server are
//!   kept because the placement decision itself is the replayed bit.
//!
//! Torn reads are possible only for events overwritten mid-dump (the writer
//! re-stamps before reuse); dumps taken at quiesce points are exact.

use crate::slo::{AlertState, Clock};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Payload words carried by every event.
pub const EVENT_WORDS: usize = 5;

/// Hard cap on a dump's JSONL payload (bytes); comfortably inside the
/// 256 KiB wire frame limit. Oldest lines are dropped first.
pub const DUMP_MAX_BYTES: usize = 192 * 1024;

/// One structured flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A placement was admitted **and its reply delivered** (batch items
    /// count individually). Emitted only after the reply write succeeds, so
    /// the event stream matches what clients observed — the property the
    /// deterministic dump rests on.
    Admit {
        /// Session id minted for the placement.
        session: u64,
        /// Global server index the session landed on.
        server: u64,
        /// Placement shard that admitted it.
        shard: u64,
        /// Model version that scored it.
        version: u64,
        /// Game id of the placed session.
        game: u64,
    },
    /// A session departed (reply delivered).
    Depart {
        /// Departed session id.
        session: u64,
        /// Server the session was freed from.
        server: u64,
        /// Shard that held it.
        shard: u64,
    },
    /// An admission was rolled back because its reply was undeliverable.
    Rollback {
        /// Session id of the rolled-back admission.
        session: u64,
        /// Server the admission was undone on.
        server: u64,
        /// Shard that held it.
        shard: u64,
    },
    /// A model reload published a new version.
    Reload {
        /// The newly published model version.
        version: u64,
    },
    /// A background retrain published a new version.
    RetrainOk {
        /// The newly published model version.
        version: u64,
        /// Outcome samples the retrain consumed.
        samples: u64,
    },
    /// A background retrain failed (no version change).
    RetrainFailed,
    /// The daemon-side fault injector fired on a reply.
    Fault {
        /// Fault-action code (see [`crate::fault::FaultAction`] order).
        point: u64,
    },
    /// An SLO objective changed alert state.
    Alert {
        /// Index into [`crate::slo::OBJECTIVES`].
        objective: u64,
        /// Previous severity code ([`AlertState::as_u8`]).
        from: u64,
        /// New severity code.
        to: u64,
    },
}

impl Event {
    /// Whether this kind survives into a deterministic dump (see the
    /// module docs for the argument).
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Event::Admit { .. } | Event::Depart { .. })
    }

    /// Stable kind name used in dump lines.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Admit { .. } => "admit",
            Event::Depart { .. } => "depart",
            Event::Rollback { .. } => "rollback",
            Event::Reload { .. } => "reload",
            Event::RetrainOk { .. } => "retrain_ok",
            Event::RetrainFailed => "retrain_failed",
            Event::Fault { .. } => "fault",
            Event::Alert { .. } => "alert",
        }
    }

    fn encode(&self) -> (u64, [u64; EVENT_WORDS]) {
        match *self {
            Event::Admit {
                session,
                server,
                shard,
                version,
                game,
            } => (0, [session, server, shard, version, game]),
            Event::Depart {
                session,
                server,
                shard,
            } => (1, [session, server, shard, 0, 0]),
            Event::Rollback {
                session,
                server,
                shard,
            } => (2, [session, server, shard, 0, 0]),
            Event::Reload { version } => (3, [version, 0, 0, 0, 0]),
            Event::RetrainOk { version, samples } => (4, [version, samples, 0, 0, 0]),
            Event::RetrainFailed => (5, [0; EVENT_WORDS]),
            Event::Fault { point } => (6, [point, 0, 0, 0, 0]),
            Event::Alert {
                objective,
                from,
                to,
            } => (7, [objective, from, to, 0, 0]),
        }
    }

    fn decode(kind: u64, d: [u64; EVENT_WORDS]) -> Option<Event> {
        Some(match kind {
            0 => Event::Admit {
                session: d[0],
                server: d[1],
                shard: d[2],
                version: d[3],
                game: d[4],
            },
            1 => Event::Depart {
                session: d[0],
                server: d[1],
                shard: d[2],
            },
            2 => Event::Rollback {
                session: d[0],
                server: d[1],
                shard: d[2],
            },
            3 => Event::Reload { version: d[0] },
            4 => Event::RetrainOk {
                version: d[0],
                samples: d[1],
            },
            5 => Event::RetrainFailed,
            6 => Event::Fault { point: d[0] },
            7 => Event::Alert {
                objective: d[0],
                from: d[1],
                to: d[2],
            },
            _ => return None,
        })
    }
}

fn alert_state_name(code: u64) -> &'static str {
    match code {
        0 => "ok",
        1 => "warn",
        2 => "critical",
        _ => "unknown",
    }
}

/// One worker-ring slot. `seq` holds `global_seq + 1` (0 = empty) and is
/// stored with release ordering *after* the payload, so a reader that
/// observes a stable `seq` across its field reads saw a consistent event.
struct EventSlot {
    seq: AtomicU64,
    t_us: AtomicU64,
    kind: AtomicU64,
    data: [AtomicU64; EVENT_WORDS],
}

impl EventSlot {
    fn new() -> EventSlot {
        EventSlot {
            seq: AtomicU64::new(0),
            t_us: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            data: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

struct WorkerRing {
    head: AtomicU64,
    slots: Vec<EventSlot>,
}

/// One decoded event as gathered for a dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Global admission order across all rings.
    pub seq: u64,
    /// Clock microseconds when the event was recorded.
    pub t_us: u64,
    /// Worker ring index, or `None` for the control ring.
    pub worker: Option<usize>,
    /// The event itself.
    pub event: Event,
}

/// A rendered dump: one JSON object per line, oldest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderDump {
    /// JSONL payload (possibly empty; always `\n`-terminated when not).
    pub jsonl: String,
    /// Lines in `jsonl` after any truncation.
    pub events: u64,
    /// Whether oldest lines were dropped to honor [`DUMP_MAX_BYTES`].
    pub truncated: bool,
}

/// The flight recorder: per-worker lock-free event rings plus a mutexed
/// control ring for off-worker threads, sharing one global sequence.
pub struct Recorder {
    workers: Vec<WorkerRing>,
    control: Mutex<VecDeque<(u64, u64, Event)>>,
    control_capacity: usize,
    seq: AtomicU64,
    clock: Arc<dyn Clock>,
}

impl Recorder {
    /// Recorder with `workers` rings of `capacity` events each (the control
    /// ring gets the same capacity).
    pub fn new(workers: usize, capacity: usize, clock: Arc<dyn Clock>) -> Recorder {
        let capacity = capacity.max(1);
        Recorder {
            workers: (0..workers.max(1))
                .map(|_| WorkerRing {
                    head: AtomicU64::new(0),
                    slots: (0..capacity).map(|_| EventSlot::new()).collect(),
                })
                .collect(),
            control: Mutex::new(VecDeque::with_capacity(capacity)),
            control_capacity: capacity,
            seq: AtomicU64::new(0),
            clock,
        }
    }

    /// Record `event` into `worker`'s ring. Lock-free; only the owning
    /// worker thread may record for its index.
    pub fn record(&self, worker: usize, event: Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ring = &self.workers[worker % self.workers.len()];
        let idx = (ring.head.fetch_add(1, Ordering::Relaxed) % ring.slots.len() as u64) as usize;
        let slot = &ring.slots[idx];
        let (kind, data) = event.encode();
        // Invalidate, write payload, then seal with the release-stored seq:
        // a dump reading a stable non-zero seq saw the whole event.
        slot.seq.store(0, Ordering::Release);
        slot.t_us.store(self.clock.now_us(), Ordering::Relaxed);
        slot.kind.store(kind, Ordering::Relaxed);
        for (d, v) in slot.data.iter().zip(data) {
            d.store(v, Ordering::Relaxed);
        }
        slot.seq.store(seq + 1, Ordering::Release);
    }

    /// Record `event` from a non-worker thread (retrainer, SLO evaluation).
    pub fn record_control(&self, event: Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let t_us = self.clock.now_us();
        let mut control = self.control.lock();
        if control.len() == self.control_capacity {
            control.pop_front();
        }
        control.push_back((seq, t_us, event));
    }

    /// Gather every currently readable event across all rings, in global
    /// sequence order. Events overwritten mid-read are skipped; exact at
    /// quiesce points.
    pub fn events(&self) -> Vec<RecordedEvent> {
        let mut out = Vec::new();
        for (w, ring) in self.workers.iter().enumerate() {
            for slot in &ring.slots {
                let seq_before = slot.seq.load(Ordering::Acquire);
                if seq_before == 0 {
                    continue;
                }
                let t_us = slot.t_us.load(Ordering::Relaxed);
                let kind = slot.kind.load(Ordering::Relaxed);
                let mut data = [0u64; EVENT_WORDS];
                for (v, d) in data.iter_mut().zip(&slot.data) {
                    *v = d.load(Ordering::Relaxed);
                }
                if slot.seq.load(Ordering::Acquire) != seq_before {
                    continue; // torn: the writer reused this slot mid-read
                }
                if let Some(event) = Event::decode(kind, data) {
                    out.push(RecordedEvent {
                        seq: seq_before - 1,
                        t_us,
                        worker: Some(w),
                        event,
                    });
                }
            }
        }
        for &(seq, t_us, event) in self.control.lock().iter() {
            out.push(RecordedEvent {
                seq,
                t_us,
                worker: None,
                event,
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Render a dump (see the module docs for the two flavors). Lines are
    /// oldest-first; if the payload would exceed [`DUMP_MAX_BYTES`] the
    /// oldest lines are dropped and `truncated` is set.
    pub fn dump(&self, deterministic: bool) -> RecorderDump {
        let events = self.events();
        let mut lines: Vec<String> = Vec::new();
        let mut i = 0u64;
        for e in &events {
            if deterministic {
                if !e.event.is_deterministic() {
                    continue;
                }
                lines.push(deterministic_line(i, &e.event));
                i += 1;
            } else {
                lines.push(operator_line(e));
            }
        }
        let total: usize = lines.iter().map(|l| l.len() + 1).sum();
        let mut truncated = false;
        let mut start = 0usize;
        let mut kept = total;
        while kept > DUMP_MAX_BYTES && start < lines.len() {
            kept -= lines[start].len() + 1;
            start += 1;
            truncated = true;
        }
        let mut jsonl = String::with_capacity(kept);
        for line in &lines[start..] {
            jsonl.push_str(line);
            jsonl.push('\n');
        }
        RecorderDump {
            events: (lines.len() - start) as u64,
            jsonl,
            truncated,
        }
    }
}

/// Deterministic-mode line: position-renumbered, run-varying fields struck.
fn deterministic_line(i: u64, event: &Event) -> String {
    let mut s = String::with_capacity(64);
    match *event {
        Event::Admit {
            server,
            shard,
            game,
            ..
        } => {
            let _ = write!(
                s,
                "{{\"i\":{i},\"kind\":\"admit\",\"server\":{server},\"shard\":{shard},\"game\":{game}}}"
            );
        }
        Event::Depart { server, shard, .. } => {
            let _ = write!(
                s,
                "{{\"i\":{i},\"kind\":\"depart\",\"server\":{server},\"shard\":{shard}}}"
            );
        }
        _ => unreachable!("filtered by is_deterministic"),
    }
    s
}

/// Operator-mode line: everything, with provenance.
fn operator_line(e: &RecordedEvent) -> String {
    let mut s = String::with_capacity(128);
    let source = match e.worker {
        Some(w) => format!("w{w}"),
        None => "ctl".to_string(),
    };
    let _ = write!(
        s,
        "{{\"seq\":{},\"t_us\":{},\"source\":\"{source}\",\"kind\":\"{}\"",
        e.seq,
        e.t_us,
        e.event.kind()
    );
    match e.event {
        Event::Admit {
            session,
            server,
            shard,
            version,
            game,
        } => {
            let _ = write!(
                s,
                ",\"session\":{session},\"server\":{server},\"shard\":{shard},\"version\":{version},\"game\":{game}"
            );
        }
        Event::Depart {
            session,
            server,
            shard,
        }
        | Event::Rollback {
            session,
            server,
            shard,
        } => {
            let _ = write!(
                s,
                ",\"session\":{session},\"server\":{server},\"shard\":{shard}"
            );
        }
        Event::Reload { version } => {
            let _ = write!(s, ",\"version\":{version}");
        }
        Event::RetrainOk { version, samples } => {
            let _ = write!(s, ",\"version\":{version},\"samples\":{samples}");
        }
        Event::RetrainFailed => {}
        Event::Fault { point } => {
            let _ = write!(s, ",\"point\":{point}");
        }
        Event::Alert {
            objective,
            from,
            to,
        } => {
            let name = crate::slo::OBJECTIVES
                .get(objective as usize)
                .copied()
                .unwrap_or("unknown");
            let _ = write!(
                s,
                ",\"objective\":\"{name}\",\"from\":\"{}\",\"to\":\"{}\"",
                alert_state_name(from),
                alert_state_name(to)
            );
        }
    }
    s.push('}');
    s
}

/// Convenience constructor for an alert-transition event.
pub fn alert_event(objective: usize, from: AlertState, to: AlertState) -> Event {
    Event::Alert {
        objective: objective as u64,
        from: from.as_u8() as u64,
        to: to.as_u8() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::ManualClock;

    fn recorder(workers: usize, capacity: usize) -> (Arc<ManualClock>, Recorder) {
        let clock = Arc::new(ManualClock::new(0));
        let r = Recorder::new(workers, capacity, clock.clone() as Arc<dyn Clock>);
        (clock, r)
    }

    fn admit(session: u64) -> Event {
        Event::Admit {
            session,
            server: session % 6,
            shard: session % 2,
            version: 1,
            game: session % 4,
        }
    }

    #[test]
    fn every_event_kind_roundtrips_through_the_ring() {
        let (_clock, r) = recorder(1, 32);
        let all = [
            admit(9),
            Event::Depart {
                session: 9,
                server: 3,
                shard: 1,
            },
            Event::Rollback {
                session: 10,
                server: 2,
                shard: 0,
            },
            Event::Reload { version: 2 },
            Event::RetrainOk {
                version: 3,
                samples: 41,
            },
            Event::RetrainFailed,
            Event::Fault { point: 4 },
            alert_event(1, AlertState::Ok, AlertState::Critical),
        ];
        for &e in &all {
            r.record(0, e);
        }
        let got = r.events();
        assert_eq!(got.len(), all.len());
        for (i, (g, &e)) in got.iter().zip(&all).enumerate() {
            assert_eq!(g.seq, i as u64);
            assert_eq!(g.event, e, "event {i}");
            assert_eq!(g.worker, Some(0));
        }
    }

    #[test]
    fn worker_and_control_events_interleave_by_global_seq() {
        let (clock, r) = recorder(2, 8);
        clock.set_us(10);
        r.record(0, admit(1));
        clock.set_us(20);
        r.record_control(Event::RetrainFailed);
        clock.set_us(30);
        r.record(1, admit(2));
        let got = r.events();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].worker, Some(0));
        assert_eq!(got[1].worker, None);
        assert_eq!(got[1].t_us, 20);
        assert_eq!(got[2].worker, Some(1));
        assert_eq!(got.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn rings_overwrite_oldest_when_full() {
        let (_clock, r) = recorder(1, 4);
        for s in 0..10 {
            r.record(0, admit(s));
        }
        let got = r.events();
        assert_eq!(got.len(), 4);
        assert_eq!(
            got.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "the last capacity events survive"
        );
        // Control ring bounds the same way.
        for _ in 0..10 {
            r.record_control(Event::RetrainFailed);
        }
        assert_eq!(r.events().len(), 4 + 4);
    }

    #[test]
    fn operator_dump_lists_everything_with_provenance() {
        let (clock, r) = recorder(1, 16);
        clock.set_us(1234);
        r.record(0, admit(7));
        r.record_control(alert_event(0, AlertState::Ok, AlertState::Warn));
        let dump = r.dump(false);
        assert!(!dump.truncated);
        assert_eq!(dump.events, 2);
        let lines: Vec<&str> = dump.jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"t_us\":1234,\"source\":\"w0\",\"kind\":\"admit\",\
             \"session\":7,\"server\":1,\"shard\":1,\"version\":1,\"game\":3}"
        );
        assert!(lines[1].contains("\"source\":\"ctl\""), "{}", lines[1]);
        assert!(
            lines[1].contains("\"objective\":\"admit_qos\",\"from\":\"ok\",\"to\":\"warn\""),
            "{}",
            lines[1]
        );
        // Every line parses as JSON.
        for line in lines {
            serde_json::parse_value_str(line).expect(line);
        }
    }

    #[test]
    fn deterministic_dump_strikes_run_varying_fields_and_renumbers() {
        let (clock_a, a) = recorder(1, 16);
        let (_clock_b, b) = recorder(1, 16);
        clock_a.set_us(999_999); // timestamps must not leak into the dump

        // Run A: a rollback and a fault interleave the confirmed stream.
        a.record(0, admit(4));
        a.record(
            0,
            Event::Rollback {
                session: 5,
                server: 1,
                shard: 0,
            },
        );
        a.record(0, Event::Fault { point: 2 });
        // The session surviving after the rollback gets a later id in run A…
        a.record(
            0,
            Event::Admit {
                session: 6,
                server: 2,
                shard: 1,
                version: 3,
                game: 1,
            },
        );
        a.record(
            0,
            Event::Depart {
                session: 4,
                server: 0,
                shard: 0,
            },
        );

        // …and an earlier id (and version) in fault-free run B.
        b.record(0, admit(4));
        b.record(
            0,
            Event::Admit {
                session: 5,
                server: 2,
                shard: 1,
                version: 1,
                game: 1,
            },
        );
        b.record(
            0,
            Event::Depart {
                session: 4,
                server: 0,
                shard: 0,
            },
        );

        let da = a.dump(true);
        let db = b.dump(true);
        assert_eq!(da.jsonl, db.jsonl, "same confirmed stream, same bytes");
        assert_eq!(da.events, 3);
        let lines: Vec<&str> = da.jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"i\":0,\"kind\":\"admit\",\"server\":4,\"shard\":0,\"game\":0}"
        );
        assert_eq!(
            lines[1],
            "{\"i\":1,\"kind\":\"admit\",\"server\":2,\"shard\":1,\"game\":1}"
        );
        assert_eq!(
            lines[2],
            "{\"i\":2,\"kind\":\"depart\",\"server\":0,\"shard\":0}"
        );
        assert!(!da.jsonl.contains("session"), "session ids are struck");
        assert!(!da.jsonl.contains("seq"), "sequence numbers are struck");
        assert!(!da.jsonl.contains("t_us"), "timestamps are struck");
    }

    #[test]
    fn dumps_cap_their_payload_by_dropping_oldest() {
        let (_clock, r) = recorder(1, 4096);
        for s in 0..4096 {
            r.record(0, admit(s));
        }
        let dump = r.dump(false);
        assert!(dump.truncated);
        assert!(dump.jsonl.len() <= DUMP_MAX_BYTES);
        assert!(dump.events < 4096);
        // The newest event survived truncation.
        assert!(dump.jsonl.lines().last().unwrap().contains("\"seq\":4095"));
    }

    #[test]
    fn empty_recorder_dumps_empty() {
        let (_clock, r) = recorder(2, 8);
        let dump = r.dump(true);
        assert_eq!(dump.jsonl, "");
        assert_eq!(dump.events, 0);
        assert!(!dump.truncated);
    }
}
