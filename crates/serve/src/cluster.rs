//! Live fleet state: which session runs which game on which server.
//!
//! The daemon mutates this under a single mutex — placement must read the
//! occupancy, pick a server and insert atomically, or two concurrent
//! `Place` requests could both land on a server's last slot.

use gaugur_core::Placement;
use gaugur_sched::maxfps::MAX_PER_SERVER;
use std::collections::HashMap;

/// One placed session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacedSession {
    /// Daemon-assigned id.
    pub id: u64,
    /// Game and resolution.
    pub placement: Placement,
    /// Server index it runs on.
    pub server: usize,
}

/// The fleet: per-server session lists plus a session index.
pub struct ClusterState {
    servers: Vec<Vec<(u64, Placement)>>,
    index: HashMap<u64, usize>,
    next_id: u64,
}

impl ClusterState {
    /// An empty fleet of `n_servers` servers.
    pub fn new(n_servers: usize) -> ClusterState {
        assert!(n_servers > 0, "fleet needs at least one server");
        ClusterState {
            servers: vec![Vec::new(); n_servers],
            index: HashMap::new(),
            next_id: 0,
        }
    }

    /// Fleet size.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Sessions currently placed.
    pub fn active_sessions(&self) -> usize {
        self.index.len()
    }

    /// Occupancy snapshot in the shape [`gaugur_sched::select_server`]
    /// expects: placements per server.
    pub fn occupancy(&self) -> Vec<Vec<Placement>> {
        self.servers
            .iter()
            .map(|s| s.iter().map(|&(_, p)| p).collect())
            .collect()
    }

    /// Sessions on one server.
    pub fn server_load(&self, server: usize) -> usize {
        self.servers[server].len()
    }

    /// Insert a session on `server` (already chosen by the policy) and
    /// return its id. Panics if the placement would break the per-server
    /// invariants — the caller must have used the eligibility filter.
    pub fn admit(&mut self, server: usize, placement: Placement) -> u64 {
        let contents = &mut self.servers[server];
        assert!(contents.len() < MAX_PER_SERVER, "server {server} full");
        assert!(
            !contents.iter().any(|&(_, (g, _))| g == placement.0),
            "game {:?} already on server {server}",
            placement.0
        );
        self.next_id += 1;
        let id = self.next_id;
        contents.push((id, placement));
        self.index.insert(id, server);
        id
    }

    /// Remove a session; returns what was removed, or `None` for an unknown
    /// id (double-departs are client errors, not panics).
    pub fn depart(&mut self, id: u64) -> Option<PlacedSession> {
        let server = self.index.remove(&id)?;
        let contents = &mut self.servers[server];
        let pos = contents
            .iter()
            .position(|&(sid, _)| sid == id)
            .expect("index and server list agree");
        let (_, placement) = contents.remove(pos);
        Some(PlacedSession {
            id,
            placement,
            server,
        })
    }

    /// Check internal invariants (used by tests and debug assertions).
    pub fn check_invariants(&self) {
        for (s, contents) in self.servers.iter().enumerate() {
            assert!(
                contents.len() <= MAX_PER_SERVER,
                "server {s} exceeds MAX_PER_SERVER"
            );
            for (i, &(_, (g, _))) in contents.iter().enumerate() {
                assert!(
                    !contents[i + 1..].iter().any(|&(_, (g2, _))| g2 == g),
                    "server {s} runs game {g:?} twice"
                );
            }
        }
        assert_eq!(
            self.index.len(),
            self.servers.iter().map(Vec::len).sum::<usize>()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_gamesim::{GameId, Resolution};

    const R: Resolution = Resolution::Fhd1080;

    #[test]
    fn admit_and_depart_round_trip() {
        let mut c = ClusterState::new(2);
        let a = c.admit(0, (GameId(1), R));
        let b = c.admit(0, (GameId(2), R));
        assert_ne!(a, b);
        assert_eq!(c.active_sessions(), 2);
        assert_eq!(c.server_load(0), 2);
        c.check_invariants();

        let gone = c.depart(a).unwrap();
        assert_eq!(gone.server, 0);
        assert_eq!(gone.placement.0, GameId(1));
        assert_eq!(c.active_sessions(), 1);
        // Departing twice is a no-op, not a crash.
        assert!(c.depart(a).is_none());
        c.check_invariants();
    }

    #[test]
    fn occupancy_reflects_sessions() {
        let mut c = ClusterState::new(3);
        c.admit(1, (GameId(4), R));
        c.admit(2, (GameId(5), R));
        let occ = c.occupancy();
        assert!(occ[0].is_empty());
        assert_eq!(occ[1], vec![(GameId(4), R)]);
        assert_eq!(occ[2], vec![(GameId(5), R)]);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn admitting_past_capacity_panics() {
        let mut c = ClusterState::new(1);
        for g in 0..=MAX_PER_SERVER as u32 {
            c.admit(0, (GameId(g), R));
        }
    }

    #[test]
    #[should_panic(expected = "already on server")]
    fn admitting_duplicate_game_panics() {
        let mut c = ClusterState::new(1);
        c.admit(0, (GameId(9), R));
        c.admit(0, (GameId(9), R));
    }
}
