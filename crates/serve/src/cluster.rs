//! Live fleet state: which session runs which game on which server.
//!
//! The daemon mutates this under a single mutex — placement must read the
//! occupancy, pick a server and insert atomically, or two concurrent
//! `Place` requests could both land on a server's last slot.
//!
//! Session ids and placements are stored in parallel per-server arrays so
//! the placement scorer can borrow each server's `&[Placement]` directly
//! (via [`gaugur_sched::OccupancyView`]) instead of cloning the fleet into
//! a `Vec<Vec<Placement>>` on every request.

use gaugur_core::Placement;
use gaugur_sched::maxfps::MAX_PER_SERVER;
use gaugur_sched::OccupancyView;
use std::collections::HashMap;

/// One placed session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacedSession {
    /// Daemon-assigned id.
    pub id: u64,
    /// Game and resolution.
    pub placement: Placement,
    /// Server index it runs on.
    pub server: usize,
}

/// The fleet (or one shard of it): per-server session lists plus a session
/// index.
pub struct ClusterState {
    /// Session ids per server; `ids[s][i]` owns `members[s][i]`.
    ids: Vec<Vec<u64>>,
    /// Placements per server, kept in lockstep with `ids`.
    members: Vec<Vec<Placement>>,
    index: HashMap<u64, usize>,
    /// Sessions ever admitted by this instance; the k-th admission gets id
    /// `k * id_stride + id_offset + 1`.
    admissions: u64,
    id_offset: u64,
    id_stride: u64,
}

impl ClusterState {
    /// An empty fleet of `n_servers` servers minting ids 1, 2, 3, ….
    pub fn new(n_servers: usize) -> ClusterState {
        ClusterState::new_sharded(n_servers, 0, 1)
    }

    /// An empty fleet of `n_servers` servers minting the interleaved id
    /// stream `offset + 1, offset + 1 + stride, offset + 1 + 2·stride, …`.
    /// With one instance per placement shard (`offset` = shard index,
    /// `stride` = shard count) every id maps back to its shard as
    /// `(id - 1) % stride`, and `(0, 1)` degenerates to the classic
    /// 1, 2, 3, … sequence.
    pub fn new_sharded(n_servers: usize, offset: u64, stride: u64) -> ClusterState {
        assert!(n_servers > 0, "fleet needs at least one server");
        assert!(stride > 0 && offset < stride, "bad id scheme");
        ClusterState {
            ids: vec![Vec::new(); n_servers],
            members: vec![Vec::new(); n_servers],
            index: HashMap::new(),
            admissions: 0,
            id_offset: offset,
            id_stride: stride,
        }
    }

    /// Fleet size.
    pub fn n_servers(&self) -> usize {
        self.members.len()
    }

    /// Sessions currently placed.
    pub fn active_sessions(&self) -> usize {
        self.index.len()
    }

    /// Borrowed view of one server's placements — the hot-path accessor
    /// (also exposed through [`OccupancyView`]).
    pub fn members(&self, server: usize) -> &[Placement] {
        &self.members[server]
    }

    /// Occupancy snapshot in the shape the stateless
    /// [`gaugur_sched::select_server`] expects: placements per server.
    /// Allocates the full fleet; the serving hot path uses the borrowed
    /// [`OccupancyView`] instead.
    pub fn occupancy(&self) -> Vec<Vec<Placement>> {
        self.members.clone()
    }

    /// Sessions on one server.
    pub fn server_load(&self, server: usize) -> usize {
        self.members[server].len()
    }

    /// Insert a session on `server` (already chosen by the policy) and
    /// return its id. Panics if the placement would break the per-server
    /// invariants — the caller must have used the eligibility filter.
    pub fn admit(&mut self, server: usize, placement: Placement) -> u64 {
        let contents = &mut self.members[server];
        assert!(contents.len() < MAX_PER_SERVER, "server {server} full");
        assert!(
            !contents.iter().any(|&(g, _)| g == placement.0),
            "game {:?} already on server {server}",
            placement.0
        );
        let id = self.admissions * self.id_stride + self.id_offset + 1;
        self.admissions += 1;
        contents.push(placement);
        self.ids[server].push(id);
        self.index.insert(id, server);
        id
    }

    /// Look up a live session without removing it (`None` for unknown or
    /// already-departed ids). The outcome-ingestion path uses this to
    /// attribute an observed frame rate to the session's game and server.
    pub fn lookup(&self, id: u64) -> Option<PlacedSession> {
        let &server = self.index.get(&id)?;
        let pos = self.ids[server].iter().position(|&sid| sid == id)?;
        Some(PlacedSession {
            id,
            placement: self.members[server][pos],
            server,
        })
    }

    /// Remove a session; returns what was removed, or `None` for an unknown
    /// id (double-departs are client errors, not panics).
    pub fn depart(&mut self, id: u64) -> Option<PlacedSession> {
        let server = self.index.remove(&id)?;
        let pos = self.ids[server]
            .iter()
            .position(|&sid| sid == id)
            .expect("index and server list agree");
        self.ids[server].remove(pos);
        let placement = self.members[server].remove(pos);
        Some(PlacedSession {
            id,
            placement,
            server,
        })
    }

    /// Sessions indexed here whose id does not belong to this instance's id
    /// stream. Structurally impossible (every id is minted by [`admit`])
    /// and therefore always zero — exported so the chaos harness's
    /// conservation oracle can assert that routing by `(id - 1) % stride`
    /// and actual shard membership never diverge.
    ///
    /// [`admit`]: ClusterState::admit
    pub fn misrouted_sessions(&self) -> u64 {
        self.index
            .keys()
            .filter(|&&id| id == 0 || (id - 1) % self.id_stride != self.id_offset)
            .count() as u64
    }

    /// Check internal invariants (used by tests and debug assertions).
    pub fn check_invariants(&self) {
        assert_eq!(self.ids.len(), self.members.len());
        for (s, contents) in self.members.iter().enumerate() {
            assert_eq!(
                self.ids[s].len(),
                contents.len(),
                "server {s} id/member lists diverged"
            );
            assert!(
                contents.len() <= MAX_PER_SERVER,
                "server {s} exceeds MAX_PER_SERVER"
            );
            for (i, &(g, _)) in contents.iter().enumerate() {
                assert!(
                    !contents[i + 1..].iter().any(|&(g2, _)| g2 == g),
                    "server {s} runs game {g:?} twice"
                );
            }
            for &id in &self.ids[s] {
                assert_eq!(self.index.get(&id), Some(&s), "session {id} misindexed");
                assert_eq!(
                    (id - 1) % self.id_stride,
                    self.id_offset,
                    "session {id} does not belong to this id stream"
                );
            }
        }
        assert_eq!(
            self.index.len(),
            self.members.iter().map(Vec::len).sum::<usize>()
        );
    }
}

impl OccupancyView for ClusterState {
    fn n_servers(&self) -> usize {
        self.members.len()
    }

    fn members(&self, server: usize) -> &[Placement] {
        &self.members[server]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_gamesim::{GameId, Resolution};

    const R: Resolution = Resolution::Fhd1080;

    #[test]
    fn admit_and_depart_round_trip() {
        let mut c = ClusterState::new(2);
        let a = c.admit(0, (GameId(1), R));
        let b = c.admit(0, (GameId(2), R));
        assert_ne!(a, b);
        assert_eq!(c.active_sessions(), 2);
        assert_eq!(c.server_load(0), 2);
        c.check_invariants();

        let gone = c.depart(a).unwrap();
        assert_eq!(gone.server, 0);
        assert_eq!(gone.placement.0, GameId(1));
        assert_eq!(c.active_sessions(), 1);
        // Departing twice is a no-op, not a crash.
        assert!(c.depart(a).is_none());
        c.check_invariants();
    }

    #[test]
    fn occupancy_reflects_sessions() {
        let mut c = ClusterState::new(3);
        c.admit(1, (GameId(4), R));
        c.admit(2, (GameId(5), R));
        let occ = c.occupancy();
        assert!(occ[0].is_empty());
        assert_eq!(occ[1], vec![(GameId(4), R)]);
        assert_eq!(occ[2], vec![(GameId(5), R)]);
        // Borrowed view agrees with the snapshot.
        assert_eq!(c.members(1), &occ[1][..]);
        assert_eq!(OccupancyView::n_servers(&c), 3);
    }

    #[test]
    fn default_id_stream_is_sequential_from_one() {
        let mut c = ClusterState::new(2);
        assert_eq!(c.admit(0, (GameId(1), R)), 1);
        assert_eq!(c.admit(1, (GameId(2), R)), 2);
        assert_eq!(c.admit(0, (GameId(3), R)), 3);
    }

    #[test]
    fn sharded_id_streams_interleave_and_route_back() {
        let stride = 3u64;
        let mut shards: Vec<ClusterState> = (0..stride)
            .map(|s| ClusterState::new_sharded(1, s, stride))
            .collect();
        for (s, shard) in shards.iter_mut().enumerate() {
            for g in 0..2u32 {
                let id = shard.admit(0, (GameId(10 * s as u32 + g), R));
                assert_eq!((id - 1) % stride, s as u64, "id {id} routes to its shard");
            }
            shard.check_invariants();
        }
        // Shard 0 mints 1, 4; shard 1 mints 2, 5; shard 2 mints 3, 6.
        assert_eq!(shards[1].lookup(2).map(|p| p.placement.0), Some(GameId(10)));
        assert!(shards[1].lookup(1).is_none());
    }

    #[test]
    #[should_panic(expected = "full")]
    fn admitting_past_capacity_panics() {
        let mut c = ClusterState::new(1);
        for g in 0..=MAX_PER_SERVER as u32 {
            c.admit(0, (GameId(g), R));
        }
    }

    #[test]
    #[should_panic(expected = "already on server")]
    fn admitting_duplicate_game_panics() {
        let mut c = ClusterState::new(1);
        c.admit(0, (GameId(9), R));
        c.admit(0, (GameId(9), R));
    }
}
