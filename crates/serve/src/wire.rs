//! Wire protocol of the placement daemon.
//!
//! Frames are a 4-byte big-endian payload length followed by that many bytes
//! of JSON — one [`Request`] or [`Response`] per frame. Length-prefixing
//! keeps the stream self-synchronizing: a payload that fails to decode is
//! still consumed exactly, so the daemon can reply with an error frame and
//! keep the connection (required: malformed frames must not cost the client
//! its connection).
//!
//! The decoder is hardened for untrusted input: declared lengths above the
//! caller's cap ([`MAX_FRAME_LEN`] by default, configurable via
//! [`read_frame_bytes_capped`]) are rejected with a typed error before any
//! allocation, payloads go through the depth-limited JSON parser, and no
//! input byte sequence panics or reads past its own frame.

use gaugur_gamesim::{GameId, Resolution};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

use crate::stats::StatsSnapshot;

/// Hard cap on a frame's payload size. Large enough for any real request
/// (a full `Stats` snapshot is ~4 KiB), small enough that a hostile length
/// cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 256 * 1024;

/// A placement request: which game at which resolution.
pub type WirePlacement = (GameId, Resolution);

/// Client-to-daemon messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Admit a session: pick a server (max-predicted-FPS greedy) and place.
    Place {
        /// The requested game.
        game: GameId,
        /// The requested display resolution.
        resolution: Resolution,
    },
    /// Admit a burst of sessions in one frame. The whole batch is placed
    /// under a single fleet-lock acquisition, amortizing locking and score
    /// computation; items are placed in order and each succeeds or is
    /// rejected independently.
    PlaceBatch {
        /// The arriving sessions, in placement order.
        requests: Vec<WirePlacement>,
    },
    /// End a session previously admitted by `Place`.
    Depart {
        /// Session id returned by the `Placed` response.
        session: u64,
    },
    /// Query the model without touching cluster state.
    Predict {
        /// The game whose performance is being asked about.
        game: GameId,
        /// Its display resolution.
        resolution: Resolution,
        /// The colocated games it would share a server with.
        others: Vec<WirePlacement>,
        /// QoS frame-rate floor for the feasibility class.
        qos: f64,
    },
    /// Report one observed session outcome into the feedback loop.
    ReportOutcome {
        /// The observation.
        report: OutcomeReport,
    },
    /// Report a burst of observed outcomes in one frame; reports are
    /// ingested in order and each is accepted or dropped independently.
    ReportOutcomeBatch {
        /// The observations.
        reports: Vec<OutcomeReport>,
    },
    /// Snapshot the accumulated outcome buffer and retrain + hot-swap the
    /// model on the background retrainer thread.
    TriggerRetrain {
        /// Fail the retrain when the snapshot holds fewer outcomes than
        /// this; `None` uses the daemon's configured floor.
        min_samples: Option<u64>,
        /// Boosting rounds to append to the ensemble; `None` uses the
        /// daemon's configured default.
        extra_rounds: Option<u64>,
    },
    /// Fetch the daemon's counters and latency histograms.
    Stats,
    /// Fetch the same state rendered as Prometheus text exposition.
    /// Control-plane like `Stats`: never subject to fault injection, so a
    /// scrape cannot perturb deterministic chaos replay.
    Metrics,
    /// Evaluate the SLO engine now and fetch the full burn-rate report
    /// (objectives, rolling windows, per-game QoS counters). Control-plane:
    /// never fault-injected.
    SloStatus,
    /// Snapshot the flight recorder as a JSONL dump. Control-plane: never
    /// fault-injected.
    DumpRecorder {
        /// `true` strips run-varying fields (session ids, model versions,
        /// timestamps) and keeps only seed-pure events, so dumps are
        /// byte-comparable across a faulted run and its fault-free replay.
        deterministic: bool,
    },
    /// Hot-swap the model: reload from `path`, or from the original
    /// model file when `path` is `None`.
    ReloadModel {
        /// Optional new model artifact to load.
        path: Option<String>,
    },
    /// Ask the daemon to shut down gracefully (drains in-flight work).
    Shutdown,
}

/// One observed session outcome as reported over the wire.
///
/// The daemon resolves `session` against the live fleet to recover the
/// game, resolution, server, and co-runners — a reporter only needs what
/// the `Placed` reply gave it plus its own frame-rate measurement. Carrying
/// `predicted_fps` and `model_version` back lets the drift detector compare
/// prediction against observation and discount reports whose prediction
/// came from a model that has since been replaced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutcomeReport {
    /// The session the observation belongs to (from the `Placed` reply).
    pub session: u64,
    /// The frame rate the session actually achieved.
    pub observed_fps: f64,
    /// The frame rate predicted at placement time.
    pub predicted_fps: f64,
    /// Version of the model that made that prediction.
    pub model_version: u64,
}

/// Daemon-to-client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A `Place` succeeded.
    Placed {
        /// Daemon-assigned session id (pass to `Depart`).
        session: u64,
        /// Index of the chosen server.
        server: usize,
        /// Predicted FPS of the new session on that server.
        predicted_fps: f64,
        /// Version of the model that made the decision.
        model_version: u64,
    },
    /// A `Place` found no eligible server (fleet saturated).
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
    /// Answer to `PlaceBatch`: one outcome per request, in request order.
    PlacedBatch {
        /// Version of the model that made every decision in this batch.
        model_version: u64,
        /// Per-request outcomes.
        results: Vec<BatchPlaceResult>,
    },
    /// A `Depart` succeeded.
    Departed {
        /// The departed session.
        session: u64,
        /// The server whose capacity was freed.
        server: usize,
    },
    /// Answer to `Predict`.
    Prediction {
        /// CM/QoS class: whether the colocation keeps the target above
        /// the requested floor.
        feasible: bool,
        /// Predicted degradation ratio δ̃ in (0, ~1].
        degradation: f64,
        /// Predicted absolute FPS (δ̃ × solo FPS).
        fps: f64,
        /// Version of the model that answered.
        model_version: u64,
        /// Whether the answer came from the prediction memo.
        cached: bool,
    },
    /// Answer to `ReportOutcome` / `ReportOutcomeBatch`.
    OutcomeRecorded {
        /// Reports buffered as training outcomes.
        accepted: u64,
        /// Reports buffered but excluded from drift statistics because the
        /// serving model is newer than the one that made their prediction.
        stale: u64,
        /// Reports dropped entirely (session not live, non-finite FPS).
        dropped: u64,
    },
    /// Answer to `TriggerRetrain`.
    RetrainQueued {
        /// Whether the retrainer accepted the job (`false`: another
        /// retrain is already pending or running).
        queued: bool,
    },
    /// Answer to `Stats`.
    Stats(Box<StatsSnapshot>),
    /// Answer to `Metrics`: the Prometheus text-exposition document.
    Metrics {
        /// Exposition-format body (one metric sample or comment per line).
        text: String,
    },
    /// Answer to `ReloadModel`.
    Reloaded {
        /// The new model version.
        version: u64,
    },
    /// Answer to `SloStatus`: the full burn-rate evaluation.
    Slo(Box<crate::slo::SloReport>),
    /// Answer to `DumpRecorder`: the flight-recorder snapshot.
    RecorderDump {
        /// One JSON object per line, oldest event first.
        jsonl: String,
        /// Events included in the dump.
        events: u64,
        /// Whether oldest events were dropped to fit the frame budget.
        truncated: bool,
    },
    /// The work queue is full; retry after the suggested backoff.
    Overloaded {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The daemon is draining and will not take further work.
    ShuttingDown,
    /// A `Depart` named a session id that is not placed (already departed,
    /// rolled back after an undeliverable reply, or never issued). Typed so
    /// clients can distinguish a double-depart from a protocol error.
    UnknownSession {
        /// The id the request named.
        session: u64,
    },
    /// The request could not be decoded or touched unknown entities.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// Outcome of one request inside a `PlaceBatch`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BatchPlaceResult {
    /// The session was placed.
    Placed {
        /// Daemon-assigned session id (pass to `Depart`).
        session: u64,
        /// Index of the chosen server.
        server: usize,
        /// Predicted FPS of the new session on that server.
        predicted_fps: f64,
    },
    /// The session could not be placed (fleet saturated for its game, or
    /// the game is unknown to the model).
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end-of-stream at a frame boundary.
    Eof,
    /// Transport failure, including read timeouts.
    Io(io::Error),
    /// The declared length exceeds the reader's cap; the stream cannot be
    /// resynchronized and should be closed after an error reply. Raised
    /// before any allocation is attempted.
    TooLarge {
        /// The length the frame header declared.
        len: usize,
        /// The cap it violated.
        cap: usize,
    },
    /// The payload was consumed but is not a valid message; the stream is
    /// still in sync and the connection can continue.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Io(e) => write!(f, "io error: {e}"),
            FrameError::TooLarge { len, cap } => {
                write!(f, "frame of {len} bytes exceeds limit of {cap}")
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Serialize `msg` as one frame onto `w`.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> io::Result<()> {
    let payload = serde_json::to_string(msg)
        .map_err(io::Error::other)?
        .into_bytes();
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(&payload)?;
    w.flush()
}

/// Read one frame from `r` and decode it.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<T, FrameError> {
    let payload = read_frame_bytes(r)?;
    decode_payload(&payload)
}

/// Read one raw frame payload (length-checked against [`MAX_FRAME_LEN`],
/// fully consumed).
pub fn read_frame_bytes<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    read_frame_bytes_capped(r, MAX_FRAME_LEN)
}

/// Read one raw frame payload, rejecting declared lengths above `cap` with
/// [`FrameError::TooLarge`] *before* attempting the allocation. The daemon
/// reads with its configured cap so an operator can bound per-connection
/// memory below the protocol maximum.
pub fn read_frame_bytes_capped<R: Read>(r: &mut R, cap: usize) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    match r.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Eof),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > cap {
        return Err(FrameError::TooLarge { len, cap });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream closed mid-frame",
            ))
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(payload)
}

/// Decode a fully-read payload. Never panics, for any input bytes.
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    serde_json::from_slice(payload).map_err(|e| FrameError::Malformed(e.to_string()))
}

/// Stable label of a request kind, used as the stats key.
pub fn request_kind(req: &Request) -> &'static str {
    match req {
        Request::Place { .. } => "place",
        Request::PlaceBatch { .. } => "place_batch",
        Request::Depart { .. } => "depart",
        Request::Predict { .. } => "predict",
        Request::ReportOutcome { .. } => "report_outcome",
        Request::ReportOutcomeBatch { .. } => "report_outcome_batch",
        Request::TriggerRetrain { .. } => "trigger_retrain",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::SloStatus => "slo_status",
        Request::DumpRecorder { .. } => "dump_recorder",
        Request::ReloadModel { .. } => "reload_model",
        Request::Shutdown => "shutdown",
    }
}

/// All request-kind labels, in a stable order (drives stats pre-registration
/// so snapshots always carry every kind).
pub const REQUEST_KINDS: [&str; 13] = [
    "place",
    "place_batch",
    "depart",
    "predict",
    "report_outcome",
    "report_outcome_batch",
    "trigger_retrain",
    "stats",
    "metrics",
    "slo_status",
    "dump_recorder",
    "reload_model",
    "shutdown",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AtomicStats;
    use proptest::prelude::*;
    use std::io::Cursor;

    fn roundtrip_request(req: &Request) {
        let mut buf = Vec::new();
        write_frame(&mut buf, req).unwrap();
        let back: Request = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(*req, back);
    }

    fn roundtrip_response(resp: &Response) {
        let mut buf = Vec::new();
        write_frame(&mut buf, resp).unwrap();
        let back: Response = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(*resp, back);
    }

    #[test]
    fn every_request_variant_roundtrips() {
        roundtrip_request(&Request::Place {
            game: GameId(3),
            resolution: Resolution::Fhd1080,
        });
        roundtrip_request(&Request::PlaceBatch {
            requests: vec![
                (GameId(3), Resolution::Fhd1080),
                (GameId(4), Resolution::Hd720),
            ],
        });
        roundtrip_request(&Request::PlaceBatch { requests: vec![] });
        roundtrip_request(&Request::Depart { session: 42 });
        roundtrip_request(&Request::Predict {
            game: GameId(0),
            resolution: Resolution::Hd720,
            others: vec![
                (GameId(1), Resolution::Fhd1080),
                (GameId(2), Resolution::Hd720),
            ],
            qos: 60.0,
        });
        roundtrip_request(&Request::ReportOutcome {
            report: OutcomeReport {
                session: 7,
                observed_fps: 54.5,
                predicted_fps: 58.25,
                model_version: 2,
            },
        });
        roundtrip_request(&Request::ReportOutcomeBatch {
            reports: vec![
                OutcomeReport {
                    session: 7,
                    observed_fps: 54.5,
                    predicted_fps: 58.25,
                    model_version: 2,
                },
                OutcomeReport {
                    session: 9,
                    observed_fps: 61.0,
                    predicted_fps: 59.5,
                    model_version: 1,
                },
            ],
        });
        roundtrip_request(&Request::ReportOutcomeBatch { reports: vec![] });
        roundtrip_request(&Request::TriggerRetrain {
            min_samples: None,
            extra_rounds: None,
        });
        roundtrip_request(&Request::TriggerRetrain {
            min_samples: Some(64),
            extra_rounds: Some(120),
        });
        roundtrip_request(&Request::Stats);
        roundtrip_request(&Request::Metrics);
        roundtrip_request(&Request::SloStatus);
        roundtrip_request(&Request::DumpRecorder {
            deterministic: true,
        });
        roundtrip_request(&Request::DumpRecorder {
            deterministic: false,
        });
        roundtrip_request(&Request::ReloadModel { path: None });
        roundtrip_request(&Request::ReloadModel {
            path: Some("/tmp/model.json".into()),
        });
        roundtrip_request(&Request::Shutdown);
    }

    #[test]
    fn every_response_variant_roundtrips() {
        roundtrip_response(&Response::Placed {
            session: 7,
            server: 3,
            predicted_fps: 58.25,
            model_version: 2,
        });
        roundtrip_response(&Response::Rejected {
            reason: "no eligible server".into(),
        });
        roundtrip_response(&Response::PlacedBatch {
            model_version: 2,
            results: vec![
                BatchPlaceResult::Placed {
                    session: 9,
                    server: 1,
                    predicted_fps: 61.5,
                },
                BatchPlaceResult::Rejected {
                    reason: "no eligible server".into(),
                },
            ],
        });
        roundtrip_response(&Response::Departed {
            session: 7,
            server: 3,
        });
        roundtrip_response(&Response::Prediction {
            feasible: true,
            degradation: 0.87,
            fps: 104.4,
            model_version: 2,
            cached: false,
        });
        roundtrip_response(&Response::OutcomeRecorded {
            accepted: 2,
            stale: 1,
            dropped: 0,
        });
        roundtrip_response(&Response::RetrainQueued { queued: true });
        roundtrip_response(&Response::Stats(Box::new(
            AtomicStats::new().snapshot(1, 0, 4),
        )));
        roundtrip_response(&Response::Metrics {
            text: "# TYPE gaugur_requests_total counter\ngaugur_requests_total 7\n".into(),
        });
        roundtrip_response(&Response::Reloaded { version: 3 });
        {
            use crate::slo::{ManualClock, SloConfig, SloEngine, WindowedCollector};
            use std::sync::Arc;
            let w = WindowedCollector::new(1, 2, Arc::new(ManualClock::new(0)));
            w.record_place_attempt(0, 3, Some(1));
            w.record_outcome(0, 3, false, 0.01);
            let engine = SloEngine::new(SloConfig::default());
            let (report, _) = engine.evaluate(&w.views(), w.per_game());
            roundtrip_response(&Response::Slo(Box::new(report)));
        }
        roundtrip_response(&Response::RecorderDump {
            jsonl: "{\"i\":0,\"kind\":\"admit\",\"server\":4,\"shard\":0,\"game\":0}\n".into(),
            events: 1,
            truncated: false,
        });
        roundtrip_response(&Response::Overloaded { retry_after_ms: 25 });
        roundtrip_response(&Response::ShuttingDown);
        roundtrip_response(&Response::UnknownSession { session: 99 });
        roundtrip_response(&Response::Error {
            message: "unknown game 999".into(),
        });
    }

    #[test]
    fn stats_snapshot_roundtrips_with_populated_histograms() {
        let stats = AtomicStats::new();
        for us in [3, 70, 800, 12_000, 3_000_000] {
            stats.record("place", true, us);
        }
        stats.record("predict", false, 55);
        stats.note_overloaded();
        stats.note_malformed();
        let snap = stats.snapshot(9, 17, 8);
        let mut buf = Vec::new();
        write_frame(&mut buf, &Response::Stats(Box::new(snap.clone()))).unwrap();
        let back: Response = read_frame(&mut Cursor::new(&buf)).unwrap();
        match back {
            Response::Stats(s) => {
                assert_eq!(*s, snap);
                let place = &s.per_request["place"];
                assert_eq!(place.ok, 5);
                assert_eq!(place.latency_us.iter().sum::<u64>(), 5);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn truncated_header_is_eof_or_io() {
        // Empty stream: clean EOF.
        match read_frame::<_, Request>(&mut Cursor::new(&[] as &[u8])) {
            Err(FrameError::Eof) => {}
            other => panic!("{other:?}"),
        }
        // Partial header: also surfaces as Eof (read_exact semantics).
        match read_frame::<_, Request>(&mut Cursor::new(&[0u8, 0][..])) {
            Err(FrameError::Eof) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Stats).unwrap();
        buf.truncate(buf.len() - 2);
        match read_frame::<_, Request>(&mut Cursor::new(&buf)) {
            Err(FrameError::Io(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_declared_length_is_rejected_without_allocating() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xxxx");
        match read_frame::<_, Request>(&mut Cursor::new(&buf)) {
            Err(FrameError::TooLarge { len, cap }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(cap, MAX_FRAME_LEN);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn configurable_cap_rejects_frames_the_default_accepts() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Stats).unwrap();
        match read_frame_bytes_capped(&mut Cursor::new(&buf), 4) {
            Err(FrameError::TooLarge { len, cap }) => {
                assert_eq!(cap, 4);
                assert!(len > 4);
            }
            other => panic!("{other:?}"),
        }
        // The identical bytes pass under the default cap.
        assert!(read_frame_bytes(&mut Cursor::new(&buf)).is_ok());
    }

    /// One encoded frame per request variant, covering every payload shape
    /// the protocol can put on the wire.
    fn sample_frames() -> Vec<Vec<u8>> {
        let requests = [
            Request::Place {
                game: GameId(3),
                resolution: Resolution::Fhd1080,
            },
            Request::PlaceBatch {
                requests: vec![
                    (GameId(3), Resolution::Fhd1080),
                    (GameId(4), Resolution::Hd720),
                ],
            },
            Request::Depart { session: 42 },
            Request::Predict {
                game: GameId(0),
                resolution: Resolution::Hd720,
                others: vec![(GameId(1), Resolution::Fhd1080)],
                qos: 60.0,
            },
            Request::ReportOutcome {
                report: OutcomeReport {
                    session: 42,
                    observed_fps: 55.5,
                    predicted_fps: 58.0,
                    model_version: 1,
                },
            },
            Request::ReportOutcomeBatch {
                reports: vec![
                    OutcomeReport {
                        session: 42,
                        observed_fps: 55.5,
                        predicted_fps: 58.0,
                        model_version: 1,
                    },
                    OutcomeReport {
                        session: 43,
                        observed_fps: 61.25,
                        predicted_fps: 60.0,
                        model_version: 2,
                    },
                ],
            },
            Request::TriggerRetrain {
                min_samples: Some(16),
                extra_rounds: Some(40),
            },
            Request::Stats,
            Request::Metrics,
            Request::SloStatus,
            Request::DumpRecorder {
                deterministic: true,
            },
            Request::ReloadModel {
                path: Some("/tmp/model.json".into()),
            },
            Request::Shutdown,
        ];
        requests
            .iter()
            .map(|r| {
                let mut buf = Vec::new();
                write_frame(&mut buf, r).unwrap();
                buf
            })
            .collect()
    }

    #[test]
    fn truncation_at_every_byte_offset_fails_cleanly() {
        for frame in sample_frames() {
            for cut in 0..frame.len() {
                let mut cursor = Cursor::new(&frame[..cut]);
                match read_frame::<_, Request>(&mut cursor) {
                    // Inside the header: clean EOF. Inside the payload: the
                    // mid-frame io error. Never a successful decode, never a
                    // panic.
                    Err(FrameError::Eof) | Err(FrameError::Io(_)) => {}
                    Ok(r) => panic!("decoded {r:?} from a frame cut at {cut}/{}", frame.len()),
                    Err(e) => panic!("unexpected error at cut {cut}: {e}"),
                }
                // Never over-reads: the decoder consumed at most the bytes
                // that exist.
                assert!(cursor.position() as usize <= cut);
            }
        }
    }

    proptest! {
        #[test]
        fn payload_mutations_decode_cleanly_and_keep_the_stream_in_sync(
            which in 0usize..13,
            offset_seed in any::<u64>(),
            bit in 0u8..8,
        ) {
            let frames = sample_frames();
            let mut frame = frames[which % frames.len()].clone();
            // Flip one payload bit (the header stays intact, so framing is
            // preserved and the decoder must consume exactly this frame).
            let pos = 4 + (offset_seed as usize) % (frame.len() - 4);
            frame[pos] ^= 1 << bit;
            let frame_len = frame.len();
            write_frame(&mut frame, &Request::Stats).unwrap();
            let mut cursor = Cursor::new(frame.as_slice());
            match read_frame::<_, Request>(&mut cursor) {
                // A flip can still be valid JSON of the right shape; any
                // other outcome must be Malformed — never an io error, a
                // panic, or an over-read.
                Ok(_) | Err(FrameError::Malformed(_)) => {}
                Err(e) => prop_assert!(false, "payload flip produced {e}"),
            }
            prop_assert_eq!(cursor.position() as usize, frame_len);
            let next: Request = read_frame(&mut cursor).unwrap();
            prop_assert_eq!(next, Request::Stats);
        }

        #[test]
        fn header_mutations_never_panic_or_read_past_the_input(
            which in 0usize..13,
            pos in 0usize..4,
            bit in 0u8..8,
        ) {
            let frames = sample_frames();
            let mut frame = frames[which % frames.len()].clone();
            frame[pos] ^= 1 << bit;
            let mut cursor = Cursor::new(frame.as_slice());
            // A corrupted length can declare anything; whatever happens the
            // decoder returns an error or a value without reading past the
            // bytes that exist.
            let _ = read_frame::<_, Request>(&mut cursor);
            prop_assert!(cursor.position() as usize <= frame.len());
        }
    }

    #[test]
    fn garbage_payload_is_malformed_not_fatal() {
        let payload = b"not json at all";
        let mut buf = (payload.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(payload);
        // Well-formed JSON of the wrong shape is equally malformed.
        let mut cursor = Cursor::new(&buf);
        match read_frame::<_, Request>(&mut cursor) {
            Err(FrameError::Malformed(_)) => {}
            other => panic!("{other:?}"),
        }
        let payload = br#"{"Place":{"game":"not a number"}}"#;
        let mut buf = (payload.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(payload);
        match read_frame::<_, Request>(&mut Cursor::new(&buf)) {
            Err(FrameError::Malformed(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_frame_leaves_stream_in_sync() {
        let mut buf = Vec::new();
        let bad = b"garbage";
        buf.extend_from_slice(&(bad.len() as u32).to_be_bytes());
        buf.extend_from_slice(bad);
        write_frame(&mut buf, &Request::Stats).unwrap();
        let mut cursor = Cursor::new(&buf);
        assert!(matches!(
            read_frame::<_, Request>(&mut cursor),
            Err(FrameError::Malformed(_))
        ));
        // The next frame decodes normally.
        let next: Request = read_frame(&mut cursor).unwrap();
        assert_eq!(next, Request::Stats);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]
        #[test]
        fn arbitrary_bytes_never_panic_the_decoder(
            bytes in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            // Whatever arrives, the decoder returns (it must not panic or
            // loop); a successful parse is fine too.
            let _ = decode_payload::<Request>(&bytes);
            let _ = decode_payload::<Response>(&bytes);
            let _ = read_frame::<_, Request>(&mut Cursor::new(&bytes));
        }

        #[test]
        fn arbitrary_json_shapes_never_panic_the_decoder(
            depth in 0usize..6,
            n in 0usize..6,
            seed in 0u64..1_000_000,
        ) {
            // Structurally valid JSON with the wrong shape.
            fn build(depth: usize, n: usize, seed: u64) -> String {
                if depth == 0 {
                    return format!("{}", seed % 100);
                }
                let inner = build(depth - 1, n, seed / 7);
                match seed % 3 {
                    0 => format!("[{}]", vec![inner; n.max(1)].join(",")),
                    1 => format!("{{\"k{}\":{}}}", seed % 10, inner),
                    _ => format!("{{\"Place\":{inner}}}"),
                }
            }
            let doc = build(depth, n, seed);
            let _ = decode_payload::<Request>(doc.as_bytes());
            let _ = decode_payload::<Response>(doc.as_bytes());
        }
    }
}
