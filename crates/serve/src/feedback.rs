//! Online feedback: outcome ingestion, drift detection, and the dataset
//! the background retrainer learns from.
//!
//! Clients report the frame rate a session *actually* achieved
//! (`ReportOutcome`); the daemon resolves the session against the live
//! fleet and buffers a training record — the colocation that was running
//! plus the observed FPS. Ingestion is lock-light: records land in sharded
//! ring buffers (round-robin over shards, one short mutex hold each), and
//! drift statistics live behind a single small mutex updated with a few
//! arithmetic operations per report.
//!
//! Drift is detected with the Page–Hinkley test over the relative
//! prediction error `|observed - predicted| / predicted`, the standard
//! sequential change-point statistic: it accumulates deviations of the
//! error from its running mean and trips when the accumulation exceeds a
//! threshold `lambda`, i.e. when the error has *sustainably* grown rather
//! than spiked once. A sliding-window MAE is kept alongside for
//! observability and for the end-to-end "did retraining help" check.
//!
//! Stale reports — those tagged with a `model_version` older than the
//! model currently serving — are buffered as training data (the observed
//! FPS is real physics regardless of which model predicted it) but are
//! excluded from drift statistics, because their `predicted_fps` came from
//! a model that is no longer serving and would smear the error signal of
//! the current one.

use gaugur_core::{Placement, SessionOutcome};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Tuning knobs for the feedback subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackConfig {
    /// Ring-buffer shards (round-robin; more shards = less contention).
    pub shards: usize,
    /// Records each shard retains; the oldest are evicted on overflow.
    pub capacity_per_shard: usize,
    /// Sliding-window length for the observable MAE.
    pub window: usize,
    /// Page–Hinkley magnitude tolerance: error deviations smaller than
    /// this are considered noise.
    pub ph_delta: f64,
    /// Page–Hinkley trip threshold on the accumulated deviation.
    pub ph_lambda: f64,
    /// Fewest buffered records a retrain will accept; below this the
    /// retrain fails (counted, version untouched).
    pub min_retrain_samples: u64,
    /// Boosting rounds appended when the model supports warm-starting.
    pub extra_rounds: usize,
    /// Queue a retrain automatically when the drift detector trips.
    pub auto_retrain: bool,
}

impl Default for FeedbackConfig {
    fn default() -> FeedbackConfig {
        FeedbackConfig {
            shards: 8,
            capacity_per_shard: 4096,
            window: 256,
            ph_delta: 0.005,
            ph_lambda: 2.5,
            min_retrain_samples: 64,
            extra_rounds: 60,
            auto_retrain: true,
        }
    }
}

/// One ingested outcome: the colocation that was running plus what the
/// client observed, ready to become a regression sample.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeRecord {
    /// The reporting session's own placement.
    pub target: Placement,
    /// Its co-runners on the same server at report time.
    pub others: Vec<Placement>,
    /// Frame rate the client measured.
    pub observed_fps: f64,
}

/// Per-colocated-game-pair aggregate: how often the pair was observed and
/// how far predictions were off for it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PairStat {
    /// Reports covering this pair.
    pub n: u64,
    /// Sum of relative prediction errors (divide by `n` for the mean).
    pub rel_err_sum: f64,
}

/// Page–Hinkley sequential change detector over a stream of error values,
/// with a bounded window for the observable MAE.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    window: VecDeque<f64>,
    window_cap: usize,
    n: u64,
    mean: f64,
    cum: f64,
    min_cum: f64,
    delta: f64,
    lambda: f64,
}

impl DriftDetector {
    /// A fresh detector with the given window and Page–Hinkley parameters.
    pub fn new(window_cap: usize, delta: f64, lambda: f64) -> DriftDetector {
        DriftDetector {
            window: VecDeque::with_capacity(window_cap.min(4096)),
            window_cap: window_cap.max(1),
            n: 0,
            mean: 0.0,
            cum: 0.0,
            min_cum: 0.0,
            delta,
            lambda,
        }
    }

    /// Feed one error observation; returns `true` when the detector trips
    /// (sustained error growth beyond `lambda`). Tripping resets the
    /// accumulated statistic so the next regime is judged afresh.
    pub fn observe(&mut self, err: f64) -> bool {
        if self.window.len() == self.window_cap {
            self.window.pop_front();
        }
        self.window.push_back(err);
        self.n += 1;
        self.mean += (err - self.mean) / self.n as f64;
        self.cum += err - self.mean - self.delta;
        self.min_cum = self.min_cum.min(self.cum);
        if self.cum - self.min_cum > self.lambda {
            self.reset_ph();
            return true;
        }
        false
    }

    /// Current Page–Hinkley score (distance of the accumulation above its
    /// historical minimum; trips at `lambda`).
    pub fn score(&self) -> f64 {
        self.cum - self.min_cum
    }

    /// Mean absolute error over the sliding window (0 when empty).
    pub fn windowed_mae(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().map(|e| e.abs()).sum::<f64>() / self.window.len() as f64
    }

    /// Observations seen so far.
    pub fn observations(&self) -> u64 {
        self.n
    }

    /// Full reset: Page–Hinkley state *and* the sliding error window.
    ///
    /// `observe` on a trip only resets the PH accumulator — the window keeps
    /// sliding so the MAE stays observable through the bad regime. After a
    /// successful retrain the old errors are no longer evidence about the
    /// *new* model, so the window must be cleared too; otherwise
    /// `windowed_mae` keeps reporting pre-retrain errors until `window_cap`
    /// fresh reports have displaced them.
    pub fn reset(&mut self) {
        self.reset_ph();
        self.window.clear();
    }

    fn reset_ph(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cum = 0.0;
        self.min_cum = 0.0;
    }
}

/// Counter snapshot mirrored into [`crate::stats::StatsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedbackCounters {
    /// Reports accepted (fresh + stale).
    pub accepted: u64,
    /// Accepted reports from an outdated model version.
    pub stale: u64,
    /// Reports rejected outright.
    pub dropped: u64,
    /// Records currently buffered.
    pub buffered: u64,
    /// Records evicted from full shards.
    pub evicted: u64,
    /// Distinct game pairs with aggregates.
    pub pairs: u64,
    /// Drift-detector trips since startup.
    pub drift_trips: u64,
    /// Successful background retrains.
    pub retrains_ok: u64,
    /// Failed background retrains.
    pub retrains_failed: u64,
    /// Duration of the last successful retrain (ms).
    pub last_retrain_ms: u64,
    /// Samples the last successful retrain used.
    pub last_retrain_samples: u64,
}

struct DriftState {
    overall: DriftDetector,
    per_game: HashMap<u32, DriftDetector>,
}

/// The feedback subsystem: sharded outcome rings, pair aggregates, drift
/// detectors, and retrain bookkeeping. One instance lives in the daemon's
/// shared state; ingestion happens on worker threads, dataset snapshots on
/// the retrainer thread.
pub struct Feedback {
    config: FeedbackConfig,
    shards: Vec<Mutex<VecDeque<OutcomeRecord>>>,
    next_shard: AtomicUsize,
    pairs: Mutex<HashMap<(u32, u32), PairStat>>,
    drift: Mutex<DriftState>,
    accepted: AtomicU64,
    stale: AtomicU64,
    dropped: AtomicU64,
    evicted: AtomicU64,
    drift_trips: AtomicU64,
    retrains_ok: AtomicU64,
    retrains_failed: AtomicU64,
    last_retrain_ms: AtomicU64,
    last_retrain_samples: AtomicU64,
}

impl Feedback {
    /// A fresh, empty subsystem.
    pub fn new(config: FeedbackConfig) -> Feedback {
        let shards = config.shards.max(1);
        Feedback {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            next_shard: AtomicUsize::new(0),
            pairs: Mutex::new(HashMap::new()),
            drift: Mutex::new(DriftState {
                overall: DriftDetector::new(config.window, config.ph_delta, config.ph_lambda),
                per_game: HashMap::new(),
            }),
            accepted: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            drift_trips: AtomicU64::new(0),
            retrains_ok: AtomicU64::new(0),
            retrains_failed: AtomicU64::new(0),
            last_retrain_ms: AtomicU64::new(0),
            last_retrain_samples: AtomicU64::new(0),
            config,
        }
    }

    /// The configuration this subsystem was built with.
    pub fn config(&self) -> &FeedbackConfig {
        &self.config
    }

    /// Ingest one resolved outcome. `predicted_fps` and `stale` come from
    /// the wire report (stale = tagged model version predates the serving
    /// one). Returns `true` when the drift detector tripped on this report.
    pub fn ingest(&self, record: OutcomeRecord, predicted_fps: f64, stale: bool) -> bool {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        if stale {
            self.stale.fetch_add(1, Ordering::Relaxed);
        }

        // Relative error only means something for a live-model prediction.
        let rel_err = if predicted_fps.is_finite() && predicted_fps > 0.0 {
            Some(((record.observed_fps - predicted_fps) / predicted_fps).abs())
        } else {
            None
        };

        if let Some(err) = rel_err {
            let mut pairs = self.pairs.lock();
            for &(other, _) in &record.others {
                let key = pair_key(record.target.0 .0, other.0);
                let stat = pairs.entry(key).or_default();
                stat.n += 1;
                stat.rel_err_sum += err;
            }
        }

        let mut tripped = false;
        if !stale {
            if let Some(err) = rel_err {
                let mut drift = self.drift.lock();
                let game = record.target.0 .0;
                let per_game = drift.per_game.entry(game).or_insert_with(|| {
                    DriftDetector::new(
                        self.config.window,
                        self.config.ph_delta,
                        self.config.ph_lambda,
                    )
                });
                let game_trip = per_game.observe(err);
                let overall_trip = drift.overall.observe(err);
                tripped = game_trip || overall_trip;
                if tripped {
                    self.drift_trips.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut ring = self.shards[shard].lock();
        if ring.len() == self.config.capacity_per_shard {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
        drop(ring);

        tripped
    }

    /// Count a rejected report (unknown session or non-finite FPS).
    pub fn note_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a successful retrain.
    pub fn note_retrain_ok(&self, duration_ms: u64, samples: u64) {
        self.retrains_ok.fetch_add(1, Ordering::Relaxed);
        self.last_retrain_ms.store(duration_ms, Ordering::Relaxed);
        self.last_retrain_samples.store(samples, Ordering::Relaxed);
    }

    /// Record a failed retrain.
    pub fn note_retrain_failed(&self) {
        self.retrains_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records currently buffered across all shards.
    pub fn buffered(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().len() as u64).sum()
    }

    /// Snapshot the buffered records as [`SessionOutcome`]s for retraining.
    /// Does not drain — the rings keep sliding so successive retrains see
    /// the freshest window of outcomes.
    pub fn snapshot_outcomes(&self) -> Vec<SessionOutcome> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let ring = shard.lock();
            out.extend(ring.iter().map(|r| SessionOutcome {
                target: r.target,
                others: r.others.clone(),
                observed_fps: r.observed_fps,
            }));
        }
        out
    }

    /// Counter snapshot plus live drift scores for `Stats`.
    pub fn counters(&self) -> FeedbackCounters {
        FeedbackCounters {
            accepted: self.accepted.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            buffered: self.buffered(),
            evicted: self.evicted.load(Ordering::Relaxed),
            pairs: self.pairs.lock().len() as u64,
            drift_trips: self.drift_trips.load(Ordering::Relaxed),
            retrains_ok: self.retrains_ok.load(Ordering::Relaxed),
            retrains_failed: self.retrains_failed.load(Ordering::Relaxed),
            last_retrain_ms: self.last_retrain_ms.load(Ordering::Relaxed),
            last_retrain_samples: self.last_retrain_samples.load(Ordering::Relaxed),
        }
    }

    /// Current overall drift score and windowed MAE.
    pub fn drift_stats(&self) -> (f64, f64) {
        let drift = self.drift.lock();
        (drift.overall.score(), drift.overall.windowed_mae())
    }

    /// Reset every drift detector (overall and per-game) after a successful
    /// retrain. The buffered outcome records are untouched — they remain
    /// valid training data — but error statistics accumulated against the
    /// *previous* model must not colour judgement of the new one.
    pub fn reset_drift(&self) {
        let mut drift = self.drift.lock();
        drift.overall.reset();
        for detector in drift.per_game.values_mut() {
            detector.reset();
        }
    }

    /// Mean relative error per observed game pair (for diagnostics).
    pub fn pair_errors(&self) -> Vec<((u32, u32), f64, u64)> {
        let pairs = self.pairs.lock();
        let mut out: Vec<_> = pairs
            .iter()
            .map(|(&k, s)| (k, s.rel_err_sum / s.n.max(1) as f64, s.n))
            .collect();
        out.sort_by_key(|&(k, _, _)| k);
        out
    }
}

/// Canonical (smaller, larger) key so `(a, b)` and `(b, a)` aggregate
/// together.
fn pair_key(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_gamesim::{GameId, Resolution};

    const R: Resolution = Resolution::Fhd1080;

    fn record(game: u32, others: &[u32], fps: f64) -> OutcomeRecord {
        OutcomeRecord {
            target: (GameId(game), R),
            others: others.iter().map(|&g| (GameId(g), R)).collect(),
            observed_fps: fps,
        }
    }

    fn small_config() -> FeedbackConfig {
        FeedbackConfig {
            shards: 2,
            capacity_per_shard: 4,
            window: 8,
            ..FeedbackConfig::default()
        }
    }

    #[test]
    fn ingestion_buffers_and_counts() {
        let fb = Feedback::new(small_config());
        for i in 0..5 {
            fb.ingest(record(1, &[2], 50.0 + i as f64), 52.0, false);
        }
        fb.ingest(record(2, &[1], 48.0), 50.0, true); // stale
        fb.note_dropped();
        let c = fb.counters();
        assert_eq!(c.accepted, 6);
        assert_eq!(c.stale, 1);
        assert_eq!(c.dropped, 1);
        assert_eq!(c.buffered, 6);
        assert_eq!(c.evicted, 0);
        assert_eq!(c.pairs, 1); // (1,2) and (2,1) canonicalise together
        assert_eq!(fb.snapshot_outcomes().len(), 6);
    }

    #[test]
    fn full_shards_evict_oldest_and_conserve_counts() {
        let fb = Feedback::new(small_config()); // 2 shards × 4 = 8 records
        for i in 0..20 {
            fb.ingest(record(1, &[], 60.0 + i as f64), 60.0, false);
        }
        let c = fb.counters();
        assert_eq!(c.accepted, 20);
        assert_eq!(c.buffered, 8);
        assert_eq!(c.evicted, 12);
        // Conservation: every accepted record is buffered or was evicted.
        assert_eq!(c.accepted, c.buffered + c.evicted);
        // The snapshot holds the 8 freshest observations.
        let fps: Vec<f64> = fb
            .snapshot_outcomes()
            .iter()
            .map(|o| o.observed_fps)
            .collect();
        assert!(fps.iter().all(|&f| f >= 72.0), "{fps:?}");
    }

    #[test]
    fn drift_detector_stays_quiet_on_stationary_errors() {
        let mut d = DriftDetector::new(64, 0.005, 2.5);
        for i in 0..2000 {
            // Small bounded noise around a constant error level.
            let err = 0.02 + 0.005 * ((i % 7) as f64 - 3.0) / 3.0;
            assert!(!d.observe(err), "tripped at {i}");
        }
        assert!(d.score() < 2.5);
        assert!(d.windowed_mae() < 0.03);
    }

    #[test]
    fn drift_detector_trips_on_sustained_error_growth() {
        let mut d = DriftDetector::new(64, 0.005, 2.5);
        for _ in 0..200 {
            d.observe(0.02);
        }
        let mut tripped = false;
        for _ in 0..200 {
            if d.observe(0.25) {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "sustained 25% error never tripped the detector");
        // Tripping resets the statistic so the next regime starts fresh.
        assert_eq!(d.observations(), 0);
        assert!(d.score() == 0.0);
    }

    #[test]
    fn subsystem_trips_and_counts_drift() {
        let mut config = small_config();
        config.window = 32;
        let fb = Feedback::new(config);
        for _ in 0..50 {
            fb.ingest(record(3, &[4], 59.0), 60.0, false);
        }
        assert_eq!(fb.counters().drift_trips, 0);
        let mut tripped = false;
        for _ in 0..100 {
            if fb.ingest(record(3, &[4], 40.0), 60.0, false) {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
        assert!(fb.counters().drift_trips >= 1);
        let (_, mae) = fb.drift_stats();
        assert!(mae > 0.05, "windowed MAE should reflect the bad regime");
    }

    #[test]
    fn stale_reports_feed_the_buffer_but_not_drift() {
        let fb = Feedback::new(small_config());
        // A torrent of terrible stale reports must not trip drift…
        for _ in 0..200 {
            assert!(!fb.ingest(record(1, &[], 10.0), 60.0, true));
        }
        let (score, mae) = fb.drift_stats();
        assert_eq!(score, 0.0);
        assert_eq!(mae, 0.0);
        // …but they are still training data.
        assert_eq!(fb.counters().buffered, 8);
    }

    #[test]
    fn pair_errors_aggregate_by_canonical_key() {
        let fb = Feedback::new(small_config());
        fb.ingest(record(1, &[2], 54.0), 60.0, false); // err 0.1
        fb.ingest(record(2, &[1], 66.0), 60.0, false); // err 0.1
        fb.ingest(record(1, &[3], 60.0), 60.0, false); // err 0.0
        let errs = fb.pair_errors();
        assert_eq!(errs.len(), 2);
        assert_eq!(errs[0].0, (1, 2));
        assert_eq!(errs[0].2, 2);
        assert!((errs[0].1 - 0.1).abs() < 1e-12);
        assert_eq!(errs[1].0, (1, 3));
    }

    #[test]
    fn reset_clears_the_window_not_just_ph_state() {
        let mut d = DriftDetector::new(64, 0.005, 2.5);
        for _ in 0..50 {
            d.observe(0.25);
        }
        assert!(d.windowed_mae() > 0.2);

        // The buggy behaviour: reset_ph alone leaves the window populated,
        // so the MAE still reflects the old regime.
        d.reset_ph();
        assert!(
            d.windowed_mae() > 0.2,
            "reset_ph is PH-only by design; the window keeps sliding"
        );

        d.reset();
        assert_eq!(d.windowed_mae(), 0.0);
        assert_eq!(d.score(), 0.0);
        assert_eq!(d.observations(), 0);
    }

    #[test]
    fn reset_drift_clears_overall_and_per_game_detectors() {
        let fb = Feedback::new(small_config());
        for _ in 0..20 {
            fb.ingest(record(3, &[4], 40.0), 60.0, false);
            fb.ingest(record(5, &[6], 45.0), 60.0, false);
        }
        let (_, mae) = fb.drift_stats();
        assert!(mae > 0.2, "bad regime should show in the windowed MAE");

        fb.reset_drift();
        let (score, mae) = fb.drift_stats();
        assert_eq!(score, 0.0);
        assert_eq!(
            mae, 0.0,
            "post-retrain MAE must not reflect pre-retrain errors"
        );

        // Buffered training data survives the reset.
        assert!(fb.counters().buffered > 0);

        // Fresh reports repopulate the statistics from scratch.
        fb.ingest(record(3, &[4], 54.0), 60.0, false);
        let (_, mae) = fb.drift_stats();
        assert!((mae - 0.1).abs() < 1e-12, "mae={mae}");
    }

    #[test]
    fn retrain_bookkeeping_reaches_counters() {
        let fb = Feedback::new(small_config());
        fb.note_retrain_failed();
        fb.note_retrain_ok(120, 77);
        let c = fb.counters();
        assert_eq!(c.retrains_ok, 1);
        assert_eq!(c.retrains_failed, 1);
        assert_eq!(c.last_retrain_ms, 120);
        assert_eq!(c.last_retrain_samples, 77);
    }
}
