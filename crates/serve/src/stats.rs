//! Daemon observability: lock-free request counters and fixed-bucket
//! latency histograms, snapshotted on demand (the `Stats` request) and
//! printed when the daemon shuts down.
//!
//! Everything here is updated on the request hot path, so the collection
//! side is plain relaxed atomics — no locks, no allocation. Snapshots are
//! not atomic across counters (a concurrent request may straddle one), which
//! is fine for monitoring; tests that need exact reconciliation quiesce the
//! daemon first.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::slo::{Clock, MonotonicClock, SloReport};
use crate::trace::{SlowRequest, StageStats};
use crate::wire::REQUEST_KINDS;

/// Upper bounds (µs) of the latency histogram buckets; the final implicit
/// bucket is overflow. Spans 1 µs service times to multi-second stalls.
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    5, 10, 25, 50, 100, 250, 500, 1_000, 5_000, 25_000, 100_000, 1_000_000,
];

/// Number of histogram counters (`LATENCY_BUCKETS_US` plus overflow).
pub const N_BUCKETS: usize = LATENCY_BUCKETS_US.len() + 1;

/// Index into an [`N_BUCKETS`]-wide histogram for a duration in µs: the
/// first bucket whose upper bound contains it, or the overflow bucket.
pub fn bucket_index(us: u64) -> usize {
    LATENCY_BUCKETS_US
        .iter()
        .position(|&b| us <= b)
        .unwrap_or(N_BUCKETS - 1)
}

/// Approximate percentile (0..=100) over a fixed-bucket histogram laid out
/// like [`LATENCY_BUCKETS_US`] (+ overflow): the upper bound of the bucket
/// holding the p-th sample, or `max_us` when the rank falls in the
/// open-ended overflow bucket (reporting `u64::MAX` there used to poison
/// downstream aggregation). Returns 0 with no samples. Shared by the per-op
/// and per-stage snapshot types so their semantics cannot drift apart.
pub fn histogram_percentile_us(buckets: &[u64], max_us: u64, p: f64) -> u64 {
    let n: u64 = buckets.iter().sum();
    if n == 0 {
        return 0;
    }
    let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return LATENCY_BUCKETS_US.get(i).copied().unwrap_or(max_us);
        }
    }
    max_us
}

/// Per-request-kind counters in snapshot (wire) form.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RequestStats {
    /// Requests answered successfully.
    pub ok: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Histogram counts per bucket of [`LATENCY_BUCKETS_US`] (+ overflow).
    pub latency_us: Vec<u64>,
    /// Largest observed latency (µs); bounds percentile reports when the
    /// rank falls in the open-ended overflow bucket.
    #[serde(default)]
    pub max_us: u64,
    /// Sum of all observed latencies (µs); feeds the Prometheus histogram
    /// `_sum` series.
    #[serde(default)]
    pub sum_us: u64,
}

impl RequestStats {
    /// Total requests of this kind.
    pub fn total(&self) -> u64 {
        self.ok + self.errors
    }

    /// Approximate latency percentile (0..=100) from the histogram: the
    /// upper bound of the bucket holding the p-th sample, or the observed
    /// maximum when the rank falls in the open-ended overflow bucket (the
    /// overflow bucket has no upper bound of its own; reporting `u64::MAX`
    /// there used to poison downstream percentile aggregation). Returns 0
    /// with no samples.
    pub fn percentile_us(&self, p: f64) -> u64 {
        histogram_percentile_us(&self.latency_us, self.max_us, p)
    }
}

/// Full daemon state snapshot, as served to `Stats` requests.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Version of the currently loaded model.
    pub model_version: u64,
    /// Sessions currently placed on the fleet.
    pub active_sessions: u64,
    /// Fleet size the daemon was configured with.
    pub servers: usize,
    /// Connections the acceptor has admitted.
    pub connections_accepted: u64,
    /// Connections fully disposed of — served to EOF/error, or shed with a
    /// terminal reply. After a quiesced shutdown this reconciles with
    /// `connections_accepted`.
    #[serde(default)]
    pub connections_closed: u64,
    /// Connections turned away with `Overloaded`.
    pub overloaded_rejections: u64,
    /// Connections turned away with `ShuttingDown` (queue closed for drain).
    #[serde(default)]
    pub shutdown_rejections: u64,
    /// Frames that failed to decode.
    pub malformed_frames: u64,
    /// Sessions admitted into the fleet (`Place` and `PlaceBatch` items).
    /// Conservation invariant: `placements_admitted` = placements confirmed
    /// to clients + `placements_rolled_back`.
    #[serde(default)]
    pub placements_admitted: u64,
    /// Admitted sessions departed again by the daemon itself because the
    /// reply carrying them could not be delivered (dead client); these never
    /// leak into `active_sessions`.
    #[serde(default)]
    pub placements_rolled_back: u64,
    /// Placement shards the fleet is partitioned into (1 = the classic
    /// single-lock fleet).
    #[serde(default)]
    pub shards: usize,
    /// Sessions currently placed, per shard (indexed by shard id).
    /// Conservation invariant: sums to `active_sessions` at any quiesced
    /// snapshot.
    #[serde(default)]
    pub shard_active_sessions: Vec<u64>,
    /// Sessions whose id did not route back to the shard that owns them
    /// (must stay 0; anything else is an id-scheme bug).
    #[serde(default)]
    pub shard_misrouted_sessions: u64,
    /// Two-phase admits that lost the re-validation race and re-scored.
    #[serde(default)]
    pub place_admit_retries: u64,
    /// Two-phase admits that exhausted their retries and fell back to the
    /// next-best shard's candidate.
    #[serde(default)]
    pub place_admit_fallbacks: u64,
    /// `Depart` requests naming a session id that was not placed (already
    /// departed, rolled back, or never existed).
    #[serde(default)]
    pub depart_unknown_sessions: u64,
    /// Prediction-memo hits.
    pub cache_hits: u64,
    /// Prediction-memo misses.
    pub cache_misses: u64,
    /// Per-server score-cache hits (placement `before` sums served from
    /// cache instead of recomputed).
    #[serde(default)]
    pub score_hits: u64,
    /// Per-server score-cache misses (full server-sum recomputations).
    #[serde(default)]
    pub score_misses: u64,
    /// Outcome reports accepted into the feedback buffer (fresh or stale).
    #[serde(default)]
    pub feedback_accepted: u64,
    /// Accepted reports whose `model_version` predated the current model;
    /// buffered as training data but excluded from drift statistics.
    #[serde(default)]
    pub feedback_stale: u64,
    /// Outcome reports rejected (unknown session or non-finite FPS).
    #[serde(default)]
    pub feedback_dropped: u64,
    /// Outcome records currently buffered for the next retrain.
    #[serde(default)]
    pub feedback_buffered: u64,
    /// Outcome records evicted from full ring shards. Conservation
    /// invariant: `feedback_accepted` = `feedback_buffered` +
    /// `feedback_evicted` + records consumed by snapshots (snapshots do not
    /// drain, so accepted = buffered + evicted at all times).
    #[serde(default)]
    pub feedback_evicted: u64,
    /// Distinct (game, game) colocation pairs with outcome aggregates.
    #[serde(default)]
    pub feedback_pairs: u64,
    /// Current overall Page–Hinkley drift score (0 when quiescent).
    #[serde(default)]
    pub drift_score: f64,
    /// Mean absolute relative FPS error over the sliding feedback window.
    #[serde(default)]
    pub windowed_mae: f64,
    /// Times the drift detector tripped since startup.
    #[serde(default)]
    pub drift_trips: u64,
    /// Background retrains that completed and published a new model version.
    #[serde(default)]
    pub retrains_ok: u64,
    /// Background retrains that failed (too few samples, unusable data, or
    /// injected faults); these never bump the model version.
    #[serde(default)]
    pub retrains_failed: u64,
    /// Wall-clock duration of the most recent successful retrain (ms).
    #[serde(default)]
    pub last_retrain_ms: u64,
    /// Outcome samples used by the most recent successful retrain.
    #[serde(default)]
    pub last_retrain_samples: u64,
    /// Counters per request kind.
    pub per_request: BTreeMap<String, RequestStats>,
    /// Merged per-stage pipeline timings (see [`crate::trace`]); keyed by
    /// [`crate::trace::STAGES`] names.
    #[serde(default)]
    pub per_stage: BTreeMap<String, StageStats>,
    /// Worst-N slowest requests with per-stage breakdowns, slowest first.
    #[serde(default)]
    pub slow_requests: Vec<SlowRequest>,
    /// Windowed SLO evaluation (burn rates, alert states, rolling views);
    /// `None` from stats sources that predate the SLO engine.
    #[serde(default)]
    pub slo: Option<SloReport>,
}

impl StatsSnapshot {
    /// Memo hit rate in [0, 1]; 0 with no lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Score-cache hit rate in [0, 1]; 0 with no lookups.
    pub fn score_hit_rate(&self) -> f64 {
        let total = self.score_hits + self.score_misses;
        if total == 0 {
            0.0
        } else {
            self.score_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "daemon statistics")?;
        writeln!(
            f,
            "  uptime:            {:.1} s",
            self.uptime_ms as f64 / 1e3
        )?;
        writeln!(f, "  model version:     {}", self.model_version)?;
        writeln!(f, "  active sessions:   {}", self.active_sessions)?;
        writeln!(f, "  servers:           {}", self.servers)?;
        writeln!(
            f,
            "  connections:       {} accepted / {} closed",
            self.connections_accepted, self.connections_closed
        )?;
        writeln!(f, "  overloaded:        {}", self.overloaded_rejections)?;
        writeln!(f, "  shed at shutdown:  {}", self.shutdown_rejections)?;
        writeln!(f, "  malformed frames:  {}", self.malformed_frames)?;
        writeln!(
            f,
            "  placements:        {} admitted / {} rolled back",
            self.placements_admitted, self.placements_rolled_back
        )?;
        if self.shards > 1 {
            writeln!(
                f,
                "  shards:            {} ({} admit retries / {} fallbacks), per-shard active {:?}",
                self.shards,
                self.place_admit_retries,
                self.place_admit_fallbacks,
                self.shard_active_sessions
            )?;
        }
        if self.depart_unknown_sessions > 0 {
            writeln!(f, "  unknown departs:   {}", self.depart_unknown_sessions)?;
        }
        writeln!(
            f,
            "  prediction memo:   {} hits / {} misses ({:.1}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate()
        )?;
        writeln!(
            f,
            "  score cache:       {} hits / {} misses ({:.1}% hit rate)",
            self.score_hits,
            self.score_misses,
            100.0 * self.score_hit_rate()
        )?;
        writeln!(
            f,
            "  feedback:          {} accepted ({} stale) / {} dropped, {} buffered / {} evicted, {} pairs",
            self.feedback_accepted,
            self.feedback_stale,
            self.feedback_dropped,
            self.feedback_buffered,
            self.feedback_evicted,
            self.feedback_pairs
        )?;
        writeln!(
            f,
            "  drift:             score {:.4}, windowed MAE {:.4}, {} trips",
            self.drift_score, self.windowed_mae, self.drift_trips
        )?;
        writeln!(
            f,
            "  retrains:          {} ok / {} failed, last {} ms over {} samples",
            self.retrains_ok, self.retrains_failed, self.last_retrain_ms, self.last_retrain_samples
        )?;
        if let Some(slo) = &self.slo {
            let burns = slo
                .objectives
                .iter()
                .map(|o| {
                    format!(
                        "{} {} ({:.1}/{:.1})",
                        o.name, o.state, o.fast_burn, o.slow_burn
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(
                f,
                "  slo:               {} — {burns}, {} transitions",
                slo.state, slo.transitions
            )?;
        }
        writeln!(
            f,
            "  {:<14} {:>8} {:>8} {:>10} {:>10} {:>10}",
            "request", "ok", "errors", "p50", "p95", "p99"
        )?;
        for (kind, rs) in &self.per_request {
            if rs.total() == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<14} {:>8} {:>8} {:>9}µs {:>9}µs {:>9}µs",
                kind,
                rs.ok,
                rs.errors,
                rs.percentile_us(50.0),
                rs.percentile_us(95.0),
                rs.percentile_us(99.0)
            )?;
        }
        if self.per_stage.values().any(|st| st.count > 0) {
            writeln!(
                f,
                "  {:<14} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "stage", "count", "mean", "p50", "p99", "max"
            )?;
            for (stage, st) in &self.per_stage {
                if st.count == 0 {
                    continue;
                }
                writeln!(
                    f,
                    "  {:<14} {:>8} {:>8.1}µs {:>9}µs {:>9}µs {:>9}µs",
                    stage,
                    st.count,
                    st.mean_us(),
                    st.percentile_us(50.0),
                    st.percentile_us(99.0),
                    st.max_us
                )?;
            }
        }
        if !self.slow_requests.is_empty() {
            writeln!(f, "  slowest requests (stage breakdown, µs)")?;
            for slow in &self.slow_requests {
                let breakdown = crate::trace::STAGES
                    .iter()
                    .zip(&slow.stage_us)
                    .filter(|(_, &us)| us > 0)
                    .map(|(name, us)| format!("{name} {us}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                writeln!(
                    f,
                    "    #{:<8} {:<14} {:>9}µs  [{breakdown}]",
                    slow.seq, slow.kind, slow.total_us
                )?;
            }
        }
        Ok(())
    }
}

struct KindCounters {
    ok: AtomicU64,
    errors: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
    max_us: AtomicU64,
    sum_us: AtomicU64,
}

impl KindCounters {
    fn new() -> KindCounters {
        KindCounters {
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max_us: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

/// Collection-side counters; shared across workers as plain atomics.
pub struct AtomicStats {
    clock: Arc<dyn Clock>,
    started_us: u64,
    kinds: Vec<(&'static str, KindCounters)>,
    connections: AtomicU64,
    connections_closed: AtomicU64,
    overloaded: AtomicU64,
    shutdown_rejected: AtomicU64,
    malformed: AtomicU64,
    admitted: AtomicU64,
    rolled_back: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    admit_retries: AtomicU64,
    admit_fallbacks: AtomicU64,
    depart_unknown: AtomicU64,
}

impl Default for AtomicStats {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicStats {
    /// Fresh counters with every request kind pre-registered, timed by a
    /// monotonic clock.
    pub fn new() -> AtomicStats {
        AtomicStats::new_with_clock(Arc::new(MonotonicClock::new()))
    }

    /// Fresh counters reading uptime from an injected [`Clock`] (the
    /// daemon shares one clock across stats, windowed telemetry and the
    /// recorder; tests use a [`crate::slo::ManualClock`]).
    pub fn new_with_clock(clock: Arc<dyn Clock>) -> AtomicStats {
        AtomicStats {
            started_us: clock.now_us(),
            clock,
            kinds: REQUEST_KINDS
                .iter()
                .map(|&k| (k, KindCounters::new()))
                .collect(),
            connections: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            shutdown_rejected: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rolled_back: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            admit_retries: AtomicU64::new(0),
            admit_fallbacks: AtomicU64::new(0),
            depart_unknown: AtomicU64::new(0),
        }
    }

    fn kind(&self, kind: &str) -> &KindCounters {
        // REQUEST_KINDS is tiny; linear scan beats hashing at this size.
        self.kinds
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| c)
            .expect("unregistered request kind")
    }

    /// Record one handled request of `kind` with its service latency.
    pub fn record(&self, kind: &str, ok: bool, latency_us: u64) {
        let c = self.kind(kind);
        if ok {
            c.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
        c.buckets[bucket_index(latency_us)].fetch_add(1, Ordering::Relaxed);
        c.max_us.fetch_max(latency_us, Ordering::Relaxed);
        c.sum_us.fetch_add(latency_us, Ordering::Relaxed);
    }

    /// Count an accepted connection.
    pub fn note_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an accepted connection fully disposed of (served to EOF/error,
    /// or shed with a terminal reply).
    pub fn note_connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a connection turned away with `Overloaded`.
    pub fn note_overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a connection turned away with `ShuttingDown`.
    pub fn note_shutdown_rejected(&self) {
        self.shutdown_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a session admitted into the fleet.
    pub fn note_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an admission rolled back because its reply was undeliverable.
    pub fn note_rolled_back(&self) {
        self.rolled_back.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a two-phase admit that lost its re-validation race and
    /// re-scored the fleet.
    pub fn note_admit_retry(&self) {
        self.admit_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a two-phase admit that exhausted its retries and fell back to
    /// a next-best shard candidate.
    pub fn note_admit_fallback(&self) {
        self.admit_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a `Depart` naming an unknown session id.
    pub fn note_depart_unknown(&self) {
        self.depart_unknown.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an undecodable frame.
    pub fn note_malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a prediction-memo hit or miss.
    pub fn note_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot every counter. `model_version`, `active_sessions` and
    /// `servers` come from the daemon, which owns that state.
    pub fn snapshot(
        &self,
        model_version: u64,
        active_sessions: u64,
        servers: usize,
    ) -> StatsSnapshot {
        let per_request = self
            .kinds
            .iter()
            .map(|(kind, c)| {
                (
                    kind.to_string(),
                    RequestStats {
                        ok: c.ok.load(Ordering::Relaxed),
                        errors: c.errors.load(Ordering::Relaxed),
                        latency_us: c
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        max_us: c.max_us.load(Ordering::Relaxed),
                        sum_us: c.sum_us.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        StatsSnapshot {
            uptime_ms: self.clock.now_us().saturating_sub(self.started_us) / 1_000,
            model_version,
            active_sessions,
            servers,
            connections_accepted: self.connections.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            overloaded_rejections: self.overloaded.load(Ordering::Relaxed),
            shutdown_rejections: self.shutdown_rejected.load(Ordering::Relaxed),
            malformed_frames: self.malformed.load(Ordering::Relaxed),
            placements_admitted: self.admitted.load(Ordering::Relaxed),
            placements_rolled_back: self.rolled_back.load(Ordering::Relaxed),
            place_admit_retries: self.admit_retries.load(Ordering::Relaxed),
            place_admit_fallbacks: self.admit_fallbacks.load(Ordering::Relaxed),
            depart_unknown_sessions: self.depart_unknown.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            // The score cache, shard layout and the feedback subsystem live
            // outside these atomics; the daemon fills all of the below in
            // when it assembles the full snapshot.
            shards: 0,
            shard_active_sessions: Vec::new(),
            shard_misrouted_sessions: 0,
            score_hits: 0,
            score_misses: 0,
            feedback_accepted: 0,
            feedback_stale: 0,
            feedback_dropped: 0,
            feedback_buffered: 0,
            feedback_evicted: 0,
            feedback_pairs: 0,
            drift_score: 0.0,
            windowed_mae: 0.0,
            drift_trips: 0,
            retrains_ok: 0,
            retrains_failed: 0,
            last_retrain_ms: 0,
            last_retrain_samples: 0,
            per_request,
            // Stage timings live in the TraceCollector; the daemon merges
            // them in alongside the score/feedback fields above.
            per_stage: BTreeMap::new(),
            slow_requests: Vec::new(),
            slo: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_latencies_correctly() {
        let s = AtomicStats::new();
        s.record("place", true, 1); // bucket 0 (≤5)
        s.record("place", true, 5); // bucket 0 (≤5)
        s.record("place", true, 6); // bucket 1 (≤10)
        s.record("place", false, 2_000_000); // overflow bucket
        let snap = s.snapshot(1, 0, 2);
        let rs = &snap.per_request["place"];
        assert_eq!(rs.ok, 3);
        assert_eq!(rs.errors, 1);
        assert_eq!(rs.latency_us[0], 2);
        assert_eq!(rs.latency_us[1], 1);
        assert_eq!(rs.latency_us[N_BUCKETS - 1], 1);
        assert_eq!(rs.total(), 4);
    }

    #[test]
    fn percentiles_track_the_histogram() {
        let s = AtomicStats::new();
        for _ in 0..99 {
            s.record("predict", true, 3);
        }
        s.record("predict", true, 900); // one slow outlier (≤1000 bucket)
        let rs = s.snapshot(1, 0, 1).per_request["predict"].clone();
        assert_eq!(rs.percentile_us(50.0), 5);
        assert_eq!(rs.percentile_us(99.0), 5);
        assert_eq!(rs.percentile_us(100.0), 1_000);
        assert_eq!(RequestStats::default().percentile_us(50.0), 0);
    }

    #[test]
    fn overflow_bucket_reports_observed_max_not_u64_max() {
        // A latency beyond the last bucket bound used to make percentile_us
        // return u64::MAX, which poisoned the load driver's aggregates.
        let s = AtomicStats::new();
        s.record("place", true, 3_456_789); // overflow (> 1s)
        let rs = s.snapshot(1, 0, 1).per_request["place"].clone();
        assert_eq!(rs.max_us, 3_456_789);
        assert_eq!(rs.percentile_us(50.0), 3_456_789);
        assert_eq!(rs.percentile_us(100.0), 3_456_789);

        // Mixed: fast requests keep their bucket bounds, only ranks landing
        // in the overflow bucket use the observed max.
        let s = AtomicStats::new();
        for _ in 0..9 {
            s.record("place", true, 4);
        }
        s.record("place", true, 2_000_000);
        let rs = s.snapshot(1, 0, 1).per_request["place"].clone();
        assert_eq!(rs.percentile_us(50.0), 5);
        assert_eq!(rs.percentile_us(90.0), 5);
        assert_eq!(rs.percentile_us(100.0), 2_000_000);
        assert_eq!(rs.max_us, 2_000_000);
    }

    // Satellite: percentile bucket-boundary behavior for the per-op
    // histograms (the stage-histogram mirror lives in `trace::tests`).
    #[test]
    fn per_op_percentile_bucket_boundaries() {
        let s = AtomicStats::new();
        // 10 samples exactly on bucket 0's upper bound (≤5µs), 10 in the
        // next bucket (≤10µs).
        for _ in 0..10 {
            s.record("place", true, 5);
        }
        for _ in 0..10 {
            s.record("place", true, 6);
        }
        let rs = s.snapshot(1, 0, 1).per_request["place"].clone();
        // p=50 → rank 10, which is the *last* sample of bucket 0: a rank
        // landing exactly on a bucket edge stays in the lower bucket.
        assert_eq!(rs.percentile_us(50.0), 5);
        // Any rank past the edge crosses into the next bucket's bound.
        assert_eq!(rs.percentile_us(50.1), 10);
        // p=0 clamps the rank to 1: the first bucket with samples.
        assert_eq!(rs.percentile_us(0.0), 5);
        // p=100 is the last bucket with samples.
        assert_eq!(rs.percentile_us(100.0), 10);
        // The sum feeds the exporter's `_sum` series.
        assert_eq!(rs.sum_us, 10 * 5 + 10 * 6);

        // Overflow-bucket rank reports the observed max, not a bound.
        let s = AtomicStats::new();
        s.record("place", true, 1_000_000); // edge of the last real bucket
        s.record("place", true, 1_000_001); // first value past it: overflow
        let rs = s.snapshot(1, 0, 1).per_request["place"].clone();
        assert_eq!(rs.latency_us[N_BUCKETS - 2], 1);
        assert_eq!(rs.latency_us[N_BUCKETS - 1], 1);
        assert_eq!(rs.percentile_us(50.0), 1_000_000);
        assert_eq!(rs.percentile_us(100.0), 1_000_001);
    }

    #[test]
    fn lifecycle_counters_reach_the_snapshot() {
        let s = AtomicStats::new();
        s.note_connection();
        s.note_connection();
        s.note_connection_closed();
        s.note_admitted();
        s.note_admitted();
        s.note_rolled_back();
        s.note_shutdown_rejected();
        s.note_admit_retry();
        s.note_admit_retry();
        s.note_admit_fallback();
        s.note_depart_unknown();
        let snap = s.snapshot(1, 1, 1);
        assert_eq!(snap.connections_accepted, 2);
        assert_eq!(snap.connections_closed, 1);
        assert_eq!(snap.placements_admitted, 2);
        assert_eq!(snap.placements_rolled_back, 1);
        assert_eq!(snap.shutdown_rejections, 1);
        assert_eq!(snap.place_admit_retries, 2);
        assert_eq!(snap.place_admit_fallbacks, 1);
        assert_eq!(snap.depart_unknown_sessions, 1);
        // Conservation: admitted = confirmed + rolled back, with one
        // confirmed placement here.
        assert_eq!(snap.placements_admitted, 1 + snap.placements_rolled_back);
    }

    #[test]
    fn every_kind_is_preregistered() {
        let snap = AtomicStats::new().snapshot(0, 0, 0);
        for kind in REQUEST_KINDS {
            assert!(snap.per_request.contains_key(kind), "{kind}");
        }
    }

    #[test]
    fn display_renders_without_panicking() {
        let s = AtomicStats::new();
        s.record("stats", true, 10);
        let text = s.snapshot(2, 3, 4).to_string();
        assert!(text.contains("model version:     2"));
        assert!(text.contains("stats"));
    }

    #[test]
    fn uptime_follows_the_injected_clock() {
        let clock = Arc::new(crate::slo::ManualClock::new(5_000_000));
        let s = AtomicStats::new_with_clock(clock.clone());
        assert_eq!(s.snapshot(1, 0, 0).uptime_ms, 0);
        clock.advance_us(2_500_000);
        assert_eq!(s.snapshot(1, 0, 0).uptime_ms, 2_500);
        // A clock that jumps backwards must not underflow.
        clock.set_us(0);
        assert_eq!(s.snapshot(1, 0, 0).uptime_ms, 0);
    }
}
