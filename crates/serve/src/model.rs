//! Model lifecycle: loading the persisted GAugur artifact, hot-swapping it
//! behind an `RwLock`, and memoizing predictions.
//!
//! In-flight requests clone the current `Arc<LoadedModel>` once at dispatch
//! and keep using it for the whole request, so a concurrent `ReloadModel`
//! can never fail or skew a request that already started — the old model
//! simply lives until its last request drops the Arc.

use gaugur_core::{GAugur, InterferencePredictor, Placement};
use gaugur_sched::{ColocationBatch, PredictScratch};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One immutable loaded model plus its provenance.
pub struct LoadedModel {
    /// The trained predictor.
    pub gaugur: GAugur,
    /// Monotonic version, bumped on every (re)load.
    pub version: u64,
    /// The artifact the model came from.
    pub source: PathBuf,
}

impl LoadedModel {
    /// Whether `id` is a game this model can predict for.
    pub fn knows_game(&self, id: gaugur_gamesim::GameId) -> bool {
        self.gaugur.profiles.contains(id)
    }
}

/// Shared, hot-swappable reference to the current model.
pub struct ModelHandle {
    current: RwLock<Arc<LoadedModel>>,
    versions: AtomicU64,
}

impl ModelHandle {
    /// Load the initial model from a `gaugur build` JSON artifact.
    pub fn load(path: impl AsRef<Path>) -> io::Result<ModelHandle> {
        let path = path.as_ref();
        let gaugur = GAugur::load_json(path)?;
        Ok(ModelHandle {
            current: RwLock::new(Arc::new(LoadedModel {
                gaugur,
                version: 1,
                source: path.to_path_buf(),
            })),
            versions: AtomicU64::new(1),
        })
    }

    /// Wrap an already-trained model (tests, benches).
    pub fn from_model(gaugur: GAugur) -> ModelHandle {
        ModelHandle {
            current: RwLock::new(Arc::new(LoadedModel {
                gaugur,
                version: 1,
                source: PathBuf::from("<in-memory>"),
            })),
            versions: AtomicU64::new(1),
        }
    }

    /// The current model. Cheap: one read-lock acquisition and an Arc clone.
    pub fn get(&self) -> Arc<LoadedModel> {
        self.current.read().clone()
    }

    /// Version of the currently served model.
    pub fn version(&self) -> u64 {
        self.get().version
    }

    /// Reload from `path` (or the current model's source when `None`) and
    /// swap atomically. The swap happens only after a successful load: a
    /// bad artifact leaves the old model serving and returns the error.
    ///
    /// Concurrent reloads are safe: artifact loading (the slow part) runs
    /// outside any lock, but the version is assigned *under* the write
    /// lock, so whichever reload publishes later carries the strictly
    /// higher version — a slow reload racing a fast one can never roll the
    /// served model back while the version counter claims otherwise.
    pub fn reload(&self, path: Option<&Path>) -> io::Result<u64> {
        let source = match path {
            Some(p) => p.to_path_buf(),
            None => self.get().source.clone(),
        };
        let gaugur = GAugur::load_json(&source)?;
        Ok(self.publish(gaugur, source))
    }

    /// Swap in an already-loaded model; returns its assigned version.
    /// Version assignment and publication happen under one write-lock
    /// critical section, which is what makes the served version monotonic
    /// under concurrent reloads.
    fn publish(&self, gaugur: GAugur, source: PathBuf) -> u64 {
        let mut current = self.current.write();
        let version = self.versions.fetch_add(1, Ordering::SeqCst) + 1;
        *current = Arc::new(LoadedModel {
            gaugur,
            version,
            source,
        });
        version
    }
}

/// Memo key: the full semantic input of a prediction. The colocation is
/// keyed as a sorted multiset — co-runner order is irrelevant to the model
/// (features are symmetric sums), so permutations share an entry. The model
/// version is part of the key, which makes hot reloads invalidate the memo
/// for free (stale entries age out via the size bound).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    version: u64,
    game: u32,
    resolution: u8,
    others: Vec<(u32, u8)>,
    qos_millis: u64,
}

fn memo_key(version: u64, qos: f64, target: Placement, others: &[Placement]) -> MemoKey {
    let mut o: Vec<(u32, u8)> = others.iter().map(|&(g, r)| (g.0, r as u8)).collect();
    o.sort_unstable();
    MemoKey {
        version,
        game: target.0 .0,
        resolution: target.1 as u8,
        others: o,
        // QoS floors are human-chosen values like 30/60 FPS; milli-FPS
        // granularity keys them exactly without hashing raw f64 bits.
        qos_millis: (qos.max(0.0) * 1000.0).round() as u64,
    }
}

/// A memoized prediction: QoS class plus degradation ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// CM-style class: does every-member-above-floor hold for the target.
    pub feasible: bool,
    /// Predicted degradation ratio δ̃.
    pub degradation: f64,
    /// Predicted absolute FPS (δ̃ × solo FPS at the target resolution).
    pub fps: f64,
}

/// Memo key for a whole colocation's summed FPS: the multiset of members
/// (sorted, so permutations share an entry) plus the model version.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SumKey {
    version: u64,
    members: Vec<(u32, u8)>,
}

fn sum_key(version: u64, members: &[Placement]) -> SumKey {
    let mut m: Vec<(u32, u8)> = members.iter().map(|&(g, r)| (g.0, r as u8)).collect();
    m.sort_unstable();
    SumKey {
        version,
        members: m,
    }
}

/// Bounded memo of `(model, target, colocation, qos) → prediction`, plus a
/// second map memoizing whole-colocation summed FPS — the quantity the
/// placement greedy compares per candidate server — so a steady-state
/// placement costs one lookup per candidate instead of one per member.
pub struct PredictionMemo {
    map: Mutex<HashMap<MemoKey, Prediction>>,
    sums: Mutex<HashMap<SumKey, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl PredictionMemo {
    /// Memo bounded to `capacity` entries (cleared wholesale when full —
    /// entries are cheap to recompute and the working set of a live fleet
    /// is far below any sensible capacity).
    pub fn new(capacity: usize) -> PredictionMemo {
        PredictionMemo {
            map: Mutex::new(HashMap::new()),
            sums: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(16),
        }
    }

    /// Memoized summed FPS of every member of `members` together. Member
    /// predictions funnel through [`predict`](PredictionMemo::predict), so
    /// the per-member entries stay shared with `Predict` requests.
    pub fn colocation_sum(&self, model: &LoadedModel, qos: f64, members: &[Placement]) -> f64 {
        if members.is_empty() {
            return 0.0;
        }
        let key = sum_key(model.version, members);
        if let Some(&hit) = self.sums.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let sum: f64 = (0..members.len())
            .map(|i| {
                let others: Vec<Placement> = members
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &p)| p)
                    .collect();
                self.predict(model, qos, members[i], &others).0.fps
            })
            .sum();
        let mut sums = self.sums.lock();
        if sums.len() >= self.capacity {
            sums.clear();
        }
        sums.insert(key, sum);
        sum
    }

    /// Batched counterpart of [`colocation_sum`]: answer every colocation in
    /// `batch` at once, writing `batch.len()` summed-FPS values into `out`
    /// (cleared first) in batch order. Hits are served from the sum memo;
    /// all misses are assembled into one [`DegradationBatch`] query plan and
    /// answered by a single fused model call through `scratch`. Bit-identical
    /// to the scalar path, including the `-0.0` empty-set sum identity.
    ///
    /// [`colocation_sum`]: PredictionMemo::colocation_sum
    /// [`DegradationBatch`]: gaugur_core::DegradationBatch
    pub fn colocation_sums(
        &self,
        model: &LoadedModel,
        batch: &ColocationBatch,
        scratch: &mut PredictScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(batch.len(), 0.0);
        let mut miss_at = std::mem::take(&mut scratch.indices);
        miss_at.clear();
        scratch.queries.clear();
        {
            let sums = self.sums.lock();
            for (i, slot) in out.iter_mut().enumerate() {
                let members = batch.members(i);
                if members.is_empty() {
                    // `out[i]` stays 0.0, matching the scalar early return
                    // (which touches neither the memo nor the counters).
                    continue;
                }
                match sums.get(&sum_key(model.version, members)) {
                    Some(&hit) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        *slot = hit;
                    }
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        miss_at.push(i);
                        scratch.queries.push_colocation(members);
                    }
                }
            }
        }
        if !miss_at.is_empty() {
            model.gaugur.predict_degradation_batch(
                &scratch.queries,
                &mut scratch.features,
                &mut scratch.values,
            );
            let mut q = 0;
            let mut sums = self.sums.lock();
            for &i in &miss_at {
                let members = batch.members(i);
                // -0.0 is `Iterator::sum`'s additive identity; seeding with
                // it keeps the accumulation bit-identical to the scalar path.
                let mut sum = -0.0;
                for &(id, res) in members {
                    let solo = model.gaugur.profiles.get(id).solo_fps_at(res);
                    // A lone member has no co-runners: the scalar path serves
                    // its solo FPS without consulting the model.
                    let fps = if members.len() == 1 {
                        solo
                    } else {
                        scratch.values[q] * solo
                    };
                    sum += fps;
                    q += 1;
                }
                if sums.len() >= self.capacity {
                    sums.clear();
                }
                sums.insert(sum_key(model.version, members), sum);
                out[i] = sum;
            }
        }
        scratch.indices = miss_at;
    }

    /// Predict through the memo. Returns the prediction and whether it was
    /// served from cache.
    pub fn predict(
        &self,
        model: &LoadedModel,
        qos: f64,
        target: Placement,
        others: &[Placement],
    ) -> (Prediction, bool) {
        self.predict_inner(model, qos, target, others, |gaugur| {
            gaugur.predict_degradation(target, others)
        })
    }

    /// [`predict`](PredictionMemo::predict) routed through the batch API: on
    /// a miss, the degradation is computed as a one-query
    /// [`DegradationBatch`](gaugur_core::DegradationBatch) through the
    /// caller's scratch buffers, so a daemon worker allocates nothing on the
    /// steady-state path. Memo entries are shared with the scalar entry
    /// point (the batch evaluator is bit-identical).
    pub fn predict_with(
        &self,
        model: &LoadedModel,
        qos: f64,
        target: Placement,
        others: &[Placement],
        scratch: &mut PredictScratch,
    ) -> (Prediction, bool) {
        self.predict_inner(model, qos, target, others, |gaugur| {
            scratch.queries.clear();
            scratch.queries.push(target, others);
            gaugur.predict_degradation_batch(
                &scratch.queries,
                &mut scratch.features,
                &mut scratch.values,
            );
            scratch.values[0]
        })
    }

    fn predict_inner(
        &self,
        model: &LoadedModel,
        qos: f64,
        target: Placement,
        others: &[Placement],
        degradation: impl FnOnce(&GAugur) -> f64,
    ) -> (Prediction, bool) {
        let key = memo_key(model.version, qos, target, others);
        if let Some(hit) = self.map.lock().get(&key).copied() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit, true);
        }
        let solo = model.gaugur.profiles.get(target.0).solo_fps_at(target.1);
        let prediction = if others.is_empty() {
            // Solo: no interference, no model involved.
            Prediction {
                feasible: solo >= qos,
                degradation: 1.0,
                fps: solo,
            }
        } else {
            let degradation = degradation(&model.gaugur);
            Prediction {
                feasible: model.gaugur.predict_qos(qos, target, others),
                degradation,
                fps: degradation * solo,
            }
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock();
        if map.len() >= self.capacity {
            map.clear();
        }
        map.insert(key, prediction);
        (prediction, false)
    }

    /// `(hits, misses)` so far.
    pub fn counts(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// [`gaugur_sched::FpsModel`] adapter that routes every member-FPS query
/// through the memo, so the placement greedy benefits from caching too.
pub struct MemoizedFps<'a> {
    /// The model snapshot this request is pinned to.
    pub model: &'a LoadedModel,
    /// The shared memo.
    pub memo: &'a PredictionMemo,
    /// QoS floor used for the feasibility half of memo entries.
    pub qos: f64,
}

impl gaugur_sched::FpsModel for MemoizedFps<'_> {
    fn predict_member_fps(&self, members: &[Placement], idx: usize) -> f64 {
        let others: Vec<Placement> = members
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != idx)
            .map(|(_, &p)| p)
            .collect();
        self.memo
            .predict(self.model, self.qos, members[idx], &others)
            .0
            .fps
    }

    fn predict_colocation_sum(&self, members: &[Placement]) -> f64 {
        self.memo.colocation_sum(self.model, self.qos, members)
    }

    fn predict_colocation_sums(
        &self,
        batch: &ColocationBatch,
        scratch: &mut PredictScratch,
        out: &mut Vec<f64>,
    ) {
        self.memo.colocation_sums(self.model, batch, scratch, out);
    }

    fn model_name(&self) -> &'static str {
        "GAugur(RM, memoized)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_gamesim::{GameCatalog, GameId, Resolution, Server};

    fn tiny_model() -> GAugur {
        let server = Server::reference(7);
        let catalog = GameCatalog::generate(42, 8);
        let config = gaugur_core::GAugurConfig {
            plan: gaugur_core::ColocationPlan {
                pairs: 40,
                triples: 10,
                quads: 5,
                seed: 3,
            },
            ..Default::default()
        };
        GAugur::build(&server, &catalog, config)
    }

    #[test]
    fn memo_hits_on_repeat_and_permutation() {
        let handle = ModelHandle::from_model(tiny_model());
        let model = handle.get();
        let memo = PredictionMemo::new(1024);
        let t = (GameId(0), Resolution::Fhd1080);
        let others = [
            (GameId(1), Resolution::Hd720),
            (GameId(2), Resolution::Fhd1080),
        ];
        let reversed = [others[1], others[0]];

        let (p1, cached1) = memo.predict(&model, 60.0, t, &others);
        assert!(!cached1);
        let (p2, cached2) = memo.predict(&model, 60.0, t, &others);
        assert!(cached2);
        // Permutation of the co-runner multiset is the same colocation.
        let (p3, cached3) = memo.predict(&model, 60.0, t, &reversed);
        assert!(cached3);
        assert_eq!(p1, p2);
        assert_eq!(p1, p3);
        assert_eq!(memo.counts(), (2, 1));

        // A different QoS floor is a different question.
        let (_, cached4) = memo.predict(&model, 30.0, t, &others);
        assert!(!cached4);
    }

    #[test]
    fn memoized_predictions_match_direct_model_calls() {
        let handle = ModelHandle::from_model(tiny_model());
        let model = handle.get();
        let memo = PredictionMemo::new(1024);
        let t = (GameId(3), Resolution::Fhd1080);
        let others = [(GameId(5), Resolution::Fhd1080)];
        let (p, _) = memo.predict(&model, 60.0, t, &others);
        assert_eq!(p.degradation, model.gaugur.predict_degradation(t, &others));
        assert_eq!(p.fps, model.gaugur.predict_fps(t, &others));
        assert_eq!(p.feasible, model.gaugur.predict_qos(60.0, t, &others));
    }

    #[test]
    fn solo_prediction_bypasses_the_models() {
        let handle = ModelHandle::from_model(tiny_model());
        let model = handle.get();
        let memo = PredictionMemo::new(64);
        let t = (GameId(1), Resolution::Hd720);
        let (p, _) = memo.predict(&model, 30.0, t, &[]);
        assert_eq!(p.degradation, 1.0);
        let solo = model.gaugur.profiles.get(t.0).solo_fps_at(t.1);
        assert_eq!(p.fps, solo);
        assert_eq!(p.feasible, solo >= 30.0);
    }

    #[test]
    fn capacity_bound_clears_instead_of_growing() {
        let handle = ModelHandle::from_model(tiny_model());
        let model = handle.get();
        let memo = PredictionMemo::new(16);
        for g in 0..8u32 {
            for o in 0..8u32 {
                if g != o {
                    let _ = memo.predict(
                        &model,
                        60.0,
                        (GameId(g), Resolution::Fhd1080),
                        &[(GameId(o), Resolution::Fhd1080)],
                    );
                }
            }
        }
        assert!(memo.len() <= 16);
    }

    #[test]
    fn colocation_sum_memoizes_and_matches_member_predictions() {
        let handle = ModelHandle::from_model(tiny_model());
        let model = handle.get();
        let memo = PredictionMemo::new(1024);
        let members = [
            (GameId(0), Resolution::Fhd1080),
            (GameId(1), Resolution::Hd720),
            (GameId(2), Resolution::Fhd1080),
        ];
        let direct: f64 = (0..members.len())
            .map(|i| {
                let others: Vec<Placement> = members
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &p)| p)
                    .collect();
                model.gaugur.predict_fps(members[i], &others)
            })
            .sum();
        let sum = memo.colocation_sum(&model, 60.0, &members);
        assert!((sum - direct).abs() < 1e-9);
        // Repeat and permutation both hit the sum memo.
        let (h0, _) = memo.counts();
        let _ = memo.colocation_sum(&model, 60.0, &members);
        let permuted = [members[2], members[0], members[1]];
        let _ = memo.colocation_sum(&model, 60.0, &permuted);
        let (h1, _) = memo.counts();
        assert_eq!(h1 - h0, 2);
        // An empty colocation sums to zero without touching the model.
        assert_eq!(memo.colocation_sum(&model, 60.0, &[]), 0.0);
    }

    #[test]
    fn batched_colocation_sums_are_bit_identical_to_scalar() {
        let handle = ModelHandle::from_model(tiny_model());
        let model = handle.get();
        // Separate memos so the batched path computes rather than replaying
        // values the scalar path already cached.
        let scalar_memo = PredictionMemo::new(1024);
        let batch_memo = PredictionMemo::new(1024);

        let mut batch = ColocationBatch::new();
        batch.push(&[]);
        batch.push(&[(GameId(0), Resolution::Fhd1080)]);
        batch.push(&[
            (GameId(1), Resolution::Hd720),
            (GameId(2), Resolution::Fhd1080),
        ]);
        batch.push(&[
            (GameId(3), Resolution::Fhd1080),
            (GameId(4), Resolution::Qhd1440),
            (GameId(5), Resolution::Hd720),
        ]);

        let mut scratch = PredictScratch::new();
        let mut out = Vec::new();
        batch_memo.colocation_sums(&model, &batch, &mut scratch, &mut out);
        assert_eq!(out.len(), batch.len());
        for (i, &got) in out.iter().enumerate() {
            let direct = scalar_memo.colocation_sum(&model, 60.0, batch.members(i));
            assert_eq!(
                got.to_bits(),
                direct.to_bits(),
                "colocation {i}: {got} vs {direct}"
            );
        }

        // A second pass hits the sum memo for every non-empty colocation;
        // the empty one touches neither the memo nor the counters.
        let (h0, m0) = batch_memo.counts();
        let mut again = Vec::new();
        batch_memo.colocation_sums(&model, &batch, &mut scratch, &mut again);
        let (h1, m1) = batch_memo.counts();
        assert_eq!(h1 - h0, 3);
        assert_eq!(m1, m0);
        assert_eq!(out, again);
    }

    #[test]
    fn predict_with_shares_memo_entries_with_the_scalar_path() {
        let handle = ModelHandle::from_model(tiny_model());
        let model = handle.get();
        let memo = PredictionMemo::new(1024);
        let mut scratch = PredictScratch::new();
        let t = (GameId(2), Resolution::Fhd1080);
        let others = [
            (GameId(4), Resolution::Hd720),
            (GameId(6), Resolution::Fhd1080),
        ];

        let (p, cached) = memo.predict_with(&model, 60.0, t, &others, &mut scratch);
        assert!(!cached);
        assert_eq!(
            p.degradation.to_bits(),
            model.gaugur.predict_degradation(t, &others).to_bits()
        );
        assert_eq!(p.feasible, model.gaugur.predict_qos(60.0, t, &others));

        // The entry it stored serves the scalar entry point, and vice versa.
        let (p2, cached2) = memo.predict(&model, 60.0, t, &others);
        assert!(cached2);
        assert_eq!(p, p2);
        let s = (GameId(7), Resolution::Hd900);
        let _ = memo.predict(&model, 30.0, s, &others);
        let (_, cached3) = memo.predict_with(&model, 30.0, s, &others, &mut scratch);
        assert!(cached3);

        // Solo queries bypass the model in both entry points.
        let (solo, _) = memo.predict_with(&model, 30.0, t, &[], &mut scratch);
        assert_eq!(solo.degradation, 1.0);
    }

    /// Regression test for the reload rollback race: two concurrent reloads
    /// used to assign versions *before* taking the write lock, so a slow
    /// reload could publish an older artifact over a newer one while the
    /// version counter claimed the newer version. The served version must
    /// never decrease, no matter how reloads interleave.
    #[test]
    fn concurrent_reloads_never_roll_the_served_version_back() {
        use std::sync::atomic::AtomicBool;

        let handle = std::sync::Arc::new(ModelHandle::from_model(tiny_model()));
        let model = tiny_model();
        let stop = std::sync::Arc::new(AtomicBool::new(false));

        std::thread::scope(|scope| {
            // Racers publish concurrently (publish is the critical section;
            // artifact loading happens outside any lock and is irrelevant
            // to the ordering bug).
            for _ in 0..4 {
                let handle = handle.clone();
                let model = model.clone();
                scope.spawn(move || {
                    for _ in 0..300 {
                        handle.publish(model.clone(), PathBuf::from("<race>"));
                    }
                });
            }
            // Observer: the served version must be monotone non-decreasing.
            let observer = {
                let handle = handle.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        let v = handle.version();
                        assert!(v >= last, "served version rolled back: {last} -> {v}");
                        last = v;
                    }
                    // One final read: the stop flag may have been raised
                    // between this thread's last poll and the last publish.
                    last.max(handle.version())
                })
            };
            // Scope joins the racers when they finish; flag the observer
            // down from a watcher thread once the racers are done.
            let watcher = {
                let handle = handle.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    // 4 racers × 300 publishes on top of version 1.
                    while handle.version() < 1201 {
                        std::thread::yield_now();
                    }
                    stop.store(true, Ordering::SeqCst);
                })
            };
            watcher.join().unwrap();
            let final_seen = observer.join().unwrap();
            assert_eq!(final_seen, 1201);
        });
        assert_eq!(handle.version(), 1201);
    }

    #[test]
    fn reload_swaps_version_and_survives_bad_artifacts() {
        let dir = std::env::temp_dir().join(format!("gaugur-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let model = tiny_model();
        model.save_json(&path).unwrap();

        let handle = ModelHandle::load(&path).unwrap();
        assert_eq!(handle.version(), 1);
        assert_eq!(handle.reload(None).unwrap(), 2);
        assert_eq!(handle.version(), 2);

        // A bad artifact must not dislodge the serving model.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, b"{ not json").unwrap();
        assert!(handle.reload(Some(&bad)).is_err());
        assert_eq!(handle.version(), 2);

        // Old Arcs keep working across a reload (in-flight requests).
        let pinned = handle.get();
        handle.reload(None).unwrap();
        assert_eq!(pinned.version, 2);
        assert_eq!(handle.version(), 3);

        std::fs::remove_dir_all(&dir).ok();
    }

    /// A schema-mismatched artifact (e.g. produced by a newer `gaugur
    /// build`) must be rejected by `load_json` with a descriptive error, and
    /// a reload pointed at one must leave the old model serving.
    #[test]
    fn reload_of_mismatched_schema_artifact_leaves_old_model_serving() {
        let dir =
            std::env::temp_dir().join(format!("gaugur-serve-schema-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        tiny_model().save_json(&path).unwrap();

        let handle = ModelHandle::load(&path).unwrap();
        assert_eq!(handle.version(), 1);

        // Forge a "future" artifact by bumping the schema marker in place.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"schema\":1", "\"schema\":999", 1);
        assert_ne!(text, tampered, "artifact must carry the schema marker");
        let future = dir.join("future.json");
        std::fs::write(&future, tampered).unwrap();

        let err = handle.reload(Some(&future)).unwrap_err();
        assert!(
            err.to_string().contains("999"),
            "undescriptive error: {err}"
        );
        assert_eq!(handle.version(), 1, "failed reload must not swap");

        // The old model keeps serving predictions untouched.
        let pinned = handle.get();
        let memo = PredictionMemo::new(64);
        let (p, _) = memo.predict(
            &pinned,
            60.0,
            (GameId(0), Resolution::Fhd1080),
            &[(GameId(1), Resolution::Hd720)],
        );
        assert!(p.fps > 0.0 && p.degradation > 0.0);

        std::fs::remove_dir_all(&dir).ok();
    }
}
