//! Maximizing overall performance on a fixed fleet (paper Section 5.2).
//!
//! "Requests are assigned one by one according to the predicted performance,
//! each request is assigned to the server producing the maximum (predicted)
//! average frame rate after assignment among all servers." Implemented as a
//! delta-greedy: the chosen server maximizes the cluster-wide predicted FPS
//! sum after the assignment, with a colocation-size cap of 4 (the models are
//! trained on ≤4-game colocations and the paper observes larger sets are
//! unplayable on its server).
//!
//! Because the request pool draws from a small game set, server contents
//! recur constantly; predictions are memoized per content multiset, which
//! turns the O(requests × servers) greedy into table lookups after warm-up.

use crate::FpsModel;
use gaugur_core::Placement;
use gaugur_gamesim::{GameId, Resolution};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Maximum games per server (matches the paper's ≤4-game colocations).
pub const MAX_PER_SERVER: usize = 4;

/// Result of the max-FPS assignment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxFpsResult {
    /// Final contents of every server.
    pub servers: Vec<Vec<GameId>>,
    /// Requests that could not be placed (only possible when the fleet's
    /// total capacity is insufficient).
    pub unplaced: usize,
}

/// Memoizing wrapper around an [`FpsModel`] keyed by server-content
/// multisets.
struct PredictionCache<'a> {
    model: &'a dyn FpsModel,
    resolution: Resolution,
    /// content (sorted ids) → sum of predicted member FPS.
    sums: HashMap<Vec<u32>, f64>,
}

impl<'a> PredictionCache<'a> {
    fn new(model: &'a dyn FpsModel, resolution: Resolution) -> Self {
        PredictionCache {
            model,
            resolution,
            sums: HashMap::new(),
        }
    }

    /// Sum of predicted FPS over a server's members.
    fn predicted_sum(&mut self, members: &[GameId]) -> f64 {
        if members.is_empty() {
            return 0.0;
        }
        let mut key: Vec<u32> = members.iter().map(|g| g.0).collect();
        key.sort_unstable();
        if let Some(&v) = self.sums.get(&key) {
            return v;
        }
        let placements: Vec<Placement> = members.iter().map(|&g| (g, self.resolution)).collect();
        let sum: f64 = (0..placements.len())
            .map(|i| self.model.predict_member_fps(&placements, i))
            .sum();
        self.sums.insert(key, sum);
        sum
    }
}

/// Assign a request stream onto `n_servers` empty servers, maximizing the
/// predicted total FPS greedily.
pub fn assign_max_fps(
    model: &dyn FpsModel,
    resolution: Resolution,
    requests: &[GameId],
    n_servers: usize,
) -> MaxFpsResult {
    let mut servers: Vec<Vec<GameId>> = vec![Vec::new(); n_servers];
    let mut cache = PredictionCache::new(model, resolution);
    let mut unplaced = 0;

    for &game in requests {
        let mut best: Option<(usize, f64)> = None;
        for (s, members) in servers.iter().enumerate() {
            if members.len() >= MAX_PER_SERVER || members.contains(&game) {
                continue;
            }
            let before = cache.predicted_sum(members);
            let mut after_members = members.clone();
            after_members.push(game);
            let after = cache.predicted_sum(&after_members);
            let delta = after - before;
            if best.is_none_or(|(_, d)| delta > d) {
                best = Some((s, delta));
            }
        }
        match best {
            Some((s, _)) => servers[s].push(game),
            None => unplaced += 1,
        }
    }

    MaxFpsResult { servers, unplaced }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_core::Placement;

    /// A toy model: every game has solo FPS 100·(id+1); each co-runner
    /// multiplies FPS by 0.7.
    struct ToyModel;

    impl FpsModel for ToyModel {
        fn predict_member_fps(&self, members: &[Placement], idx: usize) -> f64 {
            let solo = 100.0 * (members[idx].0 .0 + 1) as f64;
            solo * 0.7_f64.powi(members.len() as i32 - 1)
        }

        fn model_name(&self) -> &'static str {
            "toy"
        }
    }

    #[test]
    fn spreads_requests_when_servers_are_plentiful() {
        let requests: Vec<GameId> = (0..6).map(|i| GameId(i % 3)).collect();
        let result = assign_max_fps(&ToyModel, Resolution::Fhd1080, &requests, 6);
        assert_eq!(result.unplaced, 0);
        // Colocation always costs FPS in the toy model, so with enough
        // servers every request gets its own.
        for s in &result.servers {
            assert!(s.len() <= 1, "{:?}", result.servers);
        }
    }

    #[test]
    fn respects_capacity_and_distinctness() {
        let requests: Vec<GameId> = (0..12).map(|i| GameId(i % 6)).collect();
        let result = assign_max_fps(&ToyModel, Resolution::Fhd1080, &requests, 3);
        for s in &result.servers {
            assert!(s.len() <= MAX_PER_SERVER);
            let mut d = s.clone();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), s.len(), "no duplicate game per server");
        }
        let placed: usize = result.servers.iter().map(Vec::len).sum();
        // The greedy may leave a few requests unplaced when distinctness
        // blocks them; every request must be either placed or reported.
        assert_eq!(placed + result.unplaced, 12);
        assert!(placed >= 10, "{:?}", result.servers);
    }

    #[test]
    fn overflow_is_reported_not_dropped_silently() {
        // 3 servers × 4 slots = 12 capacity, but distinctness limits a
        // single game to 3 placements.
        let requests: Vec<GameId> = vec![GameId(0); 5];
        let result = assign_max_fps(&ToyModel, Resolution::Fhd1080, &requests, 3);
        let placed: usize = result.servers.iter().map(Vec::len).sum();
        assert_eq!(placed, 3);
        assert_eq!(result.unplaced, 2);
    }

    #[test]
    fn prefers_the_assignment_with_less_predicted_damage() {
        // Server 0 holds an expensive game (id 9 → 1000 FPS), server 1 a
        // cheap one (id 0 → 100 FPS). A new request should join the cheap
        // server: degrading 100-FPS hurts the total less than degrading
        // 1000-FPS.
        let mut servers = vec![vec![GameId(9)], vec![GameId(0)]];
        let requests = vec![GameId(1)];
        // Rebuild via the public API: pre-seed by assigning the existing
        // games first (ids 9 then 0 land on separate servers).
        let all: Vec<GameId> = vec![GameId(9), GameId(0), GameId(1)];
        let result = assign_max_fps(&ToyModel, Resolution::Fhd1080, &all, 2);
        servers = result.servers;
        let _ = requests;
        // Game 1 must share with game 0, not game 9.
        let with9 = servers.iter().find(|s| s.contains(&GameId(9))).unwrap();
        assert_eq!(with9.len(), 1, "{servers:?}");
    }
}
