//! Algorithm 1: Interference-aware Request Assignment (paper Section 5.1).
//!
//! Greedy set-cover packing: repeatedly take the largest usable feasible
//! colocation and, while every member game still has outstanding requests,
//! allocate a server running one request of each member. When a colocation
//! can no longer be satisfied it is removed. The paper notes this greedy has
//! an `ln k` approximation ratio (k = the maximum colocation size).
//!
//! Only colocations that are *actually* feasible among those the methodology
//! identified are used ("using the false positives is not meaningful because
//! those colocations violate QoS") — i.e. the true positives.

use crate::coloc::ColocationTable;
use crate::requests::RequestCounts;
use gaugur_gamesim::GameId;
use serde::{Deserialize, Serialize};

/// Result of packing a request workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackingResult {
    /// The allocated servers, each holding one request of each listed game.
    pub servers: Vec<Vec<GameId>>,
    /// Servers allocated by the singleton fallback for games no usable
    /// colocation covers (these may violate QoS; counted separately so the
    /// harness can report them).
    pub fallback_servers: usize,
}

impl PackingResult {
    /// Total number of servers used.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }
}

/// Pack `requests` using the usable feasible colocations `usable` (indices
/// into `table`), per Algorithm 1.
pub fn pack_requests(
    table: &ColocationTable,
    usable: &[usize],
    requests: &RequestCounts,
) -> PackingResult {
    let mut remaining = requests.clone();
    let mut servers = Vec::new();

    // F, sorted by descending size (then by index for determinism).
    let mut active: Vec<&Vec<GameId>> = usable.iter().map(|&i| &table.sets[i]).collect();
    active.sort_by_key(|c| std::cmp::Reverse(c.len()));

    while !remaining.is_empty() && !active.is_empty() {
        // c ← a colocation of the maximum size in F. Algorithm 1 leaves the
        // tie-break open; among the max-size colocations we pick the one
        // whose scarcest member has the most requests left, which spreads
        // consumption across games instead of exhausting one set's members
        // and stranding the rest.
        let max_size = active[0].len();
        let (pos, _) = active
            .iter()
            .take_while(|c| c.len() == max_size)
            .enumerate()
            .map(|(i, c)| {
                let scarcest = c.iter().map(|&g| remaining.get(g)).min().unwrap_or(0);
                (i, scarcest)
            })
            .max_by_key(|&(i, scarcest)| (scarcest, std::cmp::Reverse(i)))
            .expect("active is non-empty");
        let c = active[pos];
        if remaining.consume_set(c) {
            servers.push(c.clone());
        } else {
            // Some member has no requests left: remove c from F.
            active.remove(pos);
        }
    }

    // Games not covered by any usable colocation still need serving; fall
    // back to dedicated servers (the "disallow colocation" policy).
    let mut fallback_servers = 0;
    for id in remaining.remaining_games() {
        let n = remaining.get(id);
        for _ in 0..n {
            servers.push(vec![id]);
            fallback_servers += 1;
        }
    }

    PackingResult {
        servers,
        fallback_servers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloc::enumerate_subsets;
    use gaugur_gamesim::Resolution;

    /// A hand-built table: 3 games, all subsets, synthetic FPS.
    fn tiny_table(feasible_pairs: &[(u32, u32)]) -> (ColocationTable, Vec<usize>) {
        let ids: Vec<GameId> = (0..3).map(GameId).collect();
        let sets = enumerate_subsets(&ids, 3);
        // Mark singletons + listed pairs feasible (fps 100), others 10.
        let actual_fps: Vec<Vec<f64>> = sets
            .iter()
            .map(|s| {
                let ok = s.len() == 1
                    || (s.len() == 2
                        && feasible_pairs
                            .iter()
                            .any(|&(a, b)| s == &[GameId(a), GameId(b)]));
                vec![if ok { 100.0 } else { 10.0 }; s.len()]
            })
            .collect();
        let table = ColocationTable {
            resolution: Resolution::Fhd1080,
            sets,
            actual_fps,
        };
        let usable = table.feasible_indices(60.0);
        (table, usable)
    }

    #[test]
    fn pairs_halve_the_server_count() {
        let (table, usable) = tiny_table(&[(0, 1)]);
        let requests = RequestCounts::from_counts([(GameId(0), 10), (GameId(1), 10)]);
        let result = pack_requests(&table, &usable, &requests);
        // All 20 requests fit on 10 servers running the {0,1} pair.
        assert_eq!(result.server_count(), 10);
        assert_eq!(result.fallback_servers, 0);
        for s in &result.servers {
            assert_eq!(s, &vec![GameId(0), GameId(1)]);
        }
    }

    #[test]
    fn no_pairs_means_one_server_per_request() {
        let (table, usable) = tiny_table(&[]);
        let requests = RequestCounts::from_counts([(GameId(0), 5), (GameId(2), 5)]);
        let result = pack_requests(&table, &usable, &requests);
        assert_eq!(result.server_count(), 10);
    }

    #[test]
    fn leftover_requests_fall_back_to_singletons() {
        let (table, usable) = tiny_table(&[(0, 1)]);
        let requests = RequestCounts::from_counts([(GameId(0), 10), (GameId(1), 4)]);
        let result = pack_requests(&table, &usable, &requests);
        // 4 pair-servers, then 6 singleton {0} servers via the feasible
        // singleton colocation (not the fallback path).
        assert_eq!(result.server_count(), 10);
        assert_eq!(result.fallback_servers, 0);
    }

    #[test]
    fn every_request_is_served_exactly_once() {
        let (table, usable) = tiny_table(&[(0, 1), (1, 2)]);
        let requests =
            RequestCounts::from_counts([(GameId(0), 7), (GameId(1), 11), (GameId(2), 3)]);
        let result = pack_requests(&table, &usable, &requests);
        let mut served: std::collections::HashMap<GameId, usize> = Default::default();
        for s in &result.servers {
            for &g in s {
                *served.entry(g).or_default() += 1;
            }
        }
        assert_eq!(served[&GameId(0)], 7);
        assert_eq!(served[&GameId(1)], 11);
        assert_eq!(served[&GameId(2)], 3);
    }

    #[test]
    fn uncoverable_games_use_fallback() {
        // Usable set excludes game 2 entirely (not even its singleton).
        let (table, mut usable) = tiny_table(&[(0, 1)]);
        usable.retain(|&i| !table.sets[i].contains(&GameId(2)));
        let requests = RequestCounts::from_counts([(GameId(2), 3)]);
        let result = pack_requests(&table, &usable, &requests);
        assert_eq!(result.server_count(), 3);
        assert_eq!(result.fallback_servers, 3);
    }

    #[test]
    fn empty_requests_use_no_servers() {
        let (table, usable) = tiny_table(&[(0, 1)]);
        let result = pack_requests(&table, &usable, &RequestCounts::default());
        assert_eq!(result.server_count(), 0);
    }
}
