//! Incremental placement: score one arriving session against a live fleet.
//!
//! [`simulate_dynamic`](crate::dynamic::simulate_dynamic) originally held
//! this logic inline, which made it unusable from anything that is not the
//! discrete-event simulator. The serving daemon (`gaugur-serve`) faces the
//! same decision — one request, one view of fleet occupancy, pick a server —
//! so the eligibility filter and the per-policy argmax live here and both
//! callers share them.
//!
//! Two scoring paths exist:
//!
//! * [`select_server`] — the stateless baseline: every candidate server's
//!   `before` and `after` sums are predicted from scratch on every request,
//!   O(servers × members) model predictions per placement.
//! * [`select_server_incremental_with`] — the online hot path: a
//!   [`ScoreCache`] keeps each server's current predicted summed FPS (keyed
//!   by model version), so only the *extended* colocations are predicted
//!   per request — and those are assembled into **one**
//!   [`FpsModel::predict_colocation_sums`] batch call over all candidates
//!   (likewise the cache misses among the `before` sums), so a batched
//!   model pays one feature-matrix assembly and one ensemble pass per
//!   admit instead of a prediction per candidate. All buffers live in a
//!   caller-owned [`PlacementScratch`], one per worker: the hot path
//!   allocates nothing once the buffers have grown.
//!
//! Both paths compute the identical delta-greedy objective (Section 5.2):
//! the cached `before` sum is the same member-wise sum the baseline
//! recomputes, and the batched sums are bit-identical to the scalar ones by
//! the [`FpsModel::predict_colocation_sums`] contract, so the selectors
//! always agree on the chosen server.

use crate::dynamic::Policy;
use crate::maxfps::MAX_PER_SERVER;
use crate::{ColocationBatch, FpsModel, PredictScratch};
use gaugur_core::Placement;
use gaugur_gamesim::GameId;
use std::cell::RefCell;

/// Borrowed, read-only view of per-server occupancy. Implemented by the
/// plain `Vec<Vec<Placement>>` snapshots the simulator builds and by
/// `gaugur-serve`'s live `ClusterState`, so the daemon's hot path never
/// clones the fleet just to score it.
pub trait OccupancyView: Sync {
    /// Number of servers in the fleet.
    fn n_servers(&self) -> usize;

    /// The placements currently running on `server`.
    fn members(&self, server: usize) -> &[Placement];
}

impl OccupancyView for [Vec<Placement>] {
    fn n_servers(&self) -> usize {
        self.len()
    }

    fn members(&self, server: usize) -> &[Placement] {
        &self[server]
    }
}

impl OccupancyView for Vec<Vec<Placement>> {
    fn n_servers(&self) -> usize {
        self.len()
    }

    fn members(&self, server: usize) -> &[Placement] {
        &self[server]
    }
}

/// Whether one server can legally accept `game`: below the per-server
/// session cap and not already running the same game.
fn server_eligible(members: &[Placement], game: GameId) -> bool {
    members.len() < MAX_PER_SERVER && !members.iter().any(|&(g, _)| g == game)
}

/// Indices of servers that can legally accept `game`: below the per-server
/// session cap and not already running the same game (two instances of one
/// game on one GPU is not a configuration the paper's testbed measures, so
/// the models are undefined on it).
pub fn eligible_servers<V: OccupancyView + ?Sized>(occupancy: &V, game: GameId) -> Vec<usize> {
    (0..occupancy.n_servers())
        .filter(|&s| server_eligible(occupancy.members(s), game))
        .collect()
}

/// Predicted change in a server's summed FPS if `candidate` joins `members`.
/// The delta-greedy objective of Section 5.2: existing sessions' predicted
/// losses count against the newcomer's predicted gain.
pub fn placement_delta(model: &dyn FpsModel, members: &[Placement], candidate: Placement) -> f64 {
    let before: f64 = (0..members.len())
        .map(|i| model.predict_member_fps(members, i))
        .sum();
    let mut extended = members.to_vec();
    extended.push(candidate);
    let after: f64 = (0..extended.len())
        .map(|i| model.predict_member_fps(&extended, i))
        .sum();
    after - before
}

/// Per-server cached predicted summed FPS, keyed by model version.
///
/// The delta-greedy only needs each candidate server's *current* summed FPS
/// (`before`) and the sum with the newcomer added (`after`); the former is
/// a property of the server that changes only on admit/depart/model-reload,
/// so recomputing it per request is pure waste. This cache holds it.
///
/// Invalidation rules:
/// * **Model reload** — entries carry the model version they were computed
///   under; a version mismatch is a miss, so reloads invalidate for free.
/// * **Admit** — the incremental selectors store the chosen server's
///   `after` sum at selection time, under the contract that the caller
///   admits the candidate there (both the daemon and the simulator do, and
///   both hold their fleet lock across select + admit).
/// * **Depart** — the caller must call [`invalidate`](ScoreCache::invalidate)
///   for the server that lost a session; the sum is rebuilt lazily on the
///   server's next appearance in an eligible set.
pub struct ScoreCache {
    sums: Vec<Option<(u64, f64)>>,
    hits: u64,
    misses: u64,
}

impl ScoreCache {
    /// An empty cache for a fleet of `n_servers`.
    pub fn new(n_servers: usize) -> ScoreCache {
        ScoreCache {
            sums: vec![None; n_servers],
            hits: 0,
            misses: 0,
        }
    }

    /// Drop the cached sum of one server (call after a departure).
    pub fn invalidate(&mut self, server: usize) {
        self.sums[server] = None;
    }

    /// Drop every cached sum (rarely needed: version keying already handles
    /// model reloads).
    pub fn invalidate_all(&mut self) {
        self.sums.fill(None);
    }

    /// `(hits, misses)` so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The server's cached sum under `version`, counting a hit; `None`
    /// counts a miss and the caller is expected to compute and
    /// [`store`](ScoreCache::store) it.
    fn probe(&mut self, server: usize, version: u64) -> Option<f64> {
        if let Some((v, sum)) = self.sums[server] {
            if v == version {
                self.hits += 1;
                return Some(sum);
            }
        }
        self.misses += 1;
        None
    }

    /// Record a server's summed FPS under `version` (freshly computed, or
    /// the post-admit sum of a pending admission).
    fn store(&mut self, server: usize, version: u64, sum: f64) {
        self.sums[server] = Some((version, sum));
    }

    /// Undo an admit-contract store after the caller undoes the admission
    /// itself — the serving daemon departs a session whose reply never
    /// reached the client, then calls this so the cache matches the
    /// restored occupancy. `after_sum`/`before_sum` are the
    /// [`Selection::server_sum`]/[`Selection::before_sum`] of the admission
    /// being rolled back.
    ///
    /// The pre-admit sum is restored only when the current entry still
    /// bit-matches `(version, after_sum)`; anything else means the server
    /// has moved on (another admit, a depart, a reload) and the entry is
    /// dropped instead, falling back to lazy recomputation. The bit-exact
    /// guard is what keeps rolled-back admissions byte-invisible: a restored
    /// sum is always identical to what a fresh recomputation would produce.
    pub fn rollback(&mut self, server: usize, version: u64, after_sum: f64, before_sum: f64) {
        match self.sums[server] {
            Some((v, sum)) if v == version && sum.to_bits() == after_sum.to_bits() => {
                self.sums[server] = Some((version, before_sum));
            }
            _ => self.sums[server] = None,
        }
    }
}

/// Outcome of an incremental selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// The chosen server.
    pub server: usize,
    /// Predicted change in that server's summed FPS from the admission.
    pub delta: f64,
    /// Predicted summed FPS of the server *with* the candidate admitted.
    pub server_sum: f64,
    /// Predicted summed FPS of the server *before* the admission — the
    /// exact `before` term the delta was computed from, preserved so a
    /// caller that rolls the admission back can hand
    /// [`ScoreCache::rollback`] the bit-identical pre-admit sum
    /// (recomputing it as `server_sum - delta` is not bit-exact).
    pub before_sum: f64,
}

/// Caller-owned scratch for [`select_server_incremental_with`]: eligibility
/// and score buffers plus the model's [`PredictScratch`]. One per worker
/// (the daemon keeps one per thread); every buffer is overwritten each call
/// and retains its capacity, so steady-state selection allocates nothing.
#[derive(Default)]
pub struct PlacementScratch {
    eligible: Vec<usize>,
    befores: Vec<f64>,
    afters: Vec<f64>,
    miss_at: Vec<usize>,
    coloc: ColocationBatch,
    sums: Vec<f64>,
    /// Scratch threaded into the model's batched scoring; also usable by
    /// callers for their own batched predictions between selections.
    pub predict: PredictScratch,
}

impl PlacementScratch {
    /// A fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> PlacementScratch {
        PlacementScratch::default()
    }
}

/// Choose a server for one arriving session by maximum predicted FPS delta,
/// reading `before` sums from (and maintaining) `cache`, with all buffers
/// supplied by the caller.
///
/// Scoring is fully batched: the cache-missing `before` sums are computed
/// in one [`FpsModel::predict_colocation_sums`] call, and the `after` sums
/// of every candidate in another, so a batched model evaluates two fused
/// batches per admission regardless of fleet width.
///
/// Contract: on `Some(selection)`, the cache is updated as if the caller
/// admits the candidate on `selection.server` — the caller must do so
/// before releasing whatever lock guards the occupancy, or call
/// [`ScoreCache::invalidate`] on that server instead.
pub fn select_server_incremental_with<V: OccupancyView + ?Sized>(
    occupancy: &V,
    request: Placement,
    model: &dyn FpsModel,
    model_version: u64,
    cache: &mut ScoreCache,
    scratch: &mut PlacementScratch,
) -> Option<Selection> {
    let PlacementScratch {
        eligible,
        befores,
        afters,
        miss_at,
        coloc,
        sums,
        predict,
    } = scratch;
    eligible.clear();
    eligible.extend(
        (0..occupancy.n_servers()).filter(|&s| server_eligible(occupancy.members(s), request.0)),
    );
    if eligible.is_empty() {
        return None;
    }

    // `before` sums: in steady state these are cache reads; the misses are
    // gathered into one batch call.
    befores.clear();
    befores.resize(eligible.len(), 0.0);
    miss_at.clear();
    coloc.clear();
    for (i, &s) in eligible.iter().enumerate() {
        match cache.probe(s, model_version) {
            Some(sum) => befores[i] = sum,
            None => {
                miss_at.push(i);
                coloc.push(occupancy.members(s));
            }
        }
    }
    if !miss_at.is_empty() {
        model.predict_colocation_sums(coloc, predict, sums);
        for (k, &i) in miss_at.iter().enumerate() {
            befores[i] = sums[k];
            cache.store(eligible[i], model_version, sums[k]);
        }
    }

    // `after` sums: every candidate's extended colocation, one batch call.
    coloc.clear();
    for &s in eligible.iter() {
        coloc.push_extended(occupancy.members(s), request);
    }
    model.predict_colocation_sums(coloc, predict, afters);

    let best = (0..eligible.len())
        .max_by(|&a, &b| (afters[a] - befores[a]).total_cmp(&(afters[b] - befores[b])))
        .expect("non-empty eligible set");
    let selection = Selection {
        server: eligible[best],
        delta: afters[best] - befores[best],
        server_sum: afters[best],
        before_sum: befores[best],
    };
    cache.store(selection.server, model_version, selection.server_sum);
    Some(selection)
}

/// Cross-shard argmax for sharded placement: rank per-shard candidate
/// [`Selection`]s best-first by predicted FPS delta, writing the shard
/// indices of the `Some` entries into `out` (cleared first, so a
/// caller-owned buffer makes this allocation-free in steady state).
///
/// Ties break toward the lower shard index, which keeps the ranking
/// deterministic regardless of the order shard scoring finished in. The
/// full ranking (not just the winner) is what the two-phase admit path
/// needs: when the best shard loses its re-validation race too many times,
/// admission falls back to the next entry.
pub fn rank_shard_selections(candidates: &[Option<Selection>], out: &mut Vec<usize>) {
    out.clear();
    out.extend(
        candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(shard, _)| shard),
    );
    // Stable sort on descending delta: equal deltas keep ascending shard
    // order.
    out.sort_by(|&a, &b| {
        let da = candidates[a].as_ref().expect("filtered Some").delta;
        let db = candidates[b].as_ref().expect("filtered Some").delta;
        db.total_cmp(&da)
    });
}

thread_local! {
    /// Scratch backing the convenience wrapper below: one per thread, so
    /// callers that never manage scratch explicitly (the simulator, tests)
    /// still run the zero-allocation path.
    static LOCAL_SCRATCH: RefCell<PlacementScratch> = RefCell::new(PlacementScratch::new());
}

/// [`select_server_incremental_with`] with a thread-local scratch — the
/// drop-in API for callers that do not thread their own buffers. Workers
/// that own a [`PlacementScratch`] (the serving daemon) should call the
/// `_with` variant directly.
pub fn select_server_incremental<V: OccupancyView + ?Sized>(
    occupancy: &V,
    request: Placement,
    model: &dyn FpsModel,
    model_version: u64,
    cache: &mut ScoreCache,
) -> Option<Selection> {
    LOCAL_SCRATCH.with(|scratch| {
        select_server_incremental_with(
            occupancy,
            request,
            model,
            model_version,
            cache,
            &mut scratch.borrow_mut(),
        )
    })
}

/// Policy dispatch over the incremental scorer: `MaxPredictedFps` goes
/// through [`select_server_incremental`] (same admit contract), the
/// model-free policies fall back to [`select_server`] and leave the cache
/// untouched.
pub fn select_server_cached<V: OccupancyView + ?Sized>(
    occupancy: &V,
    request: Placement,
    policy: &Policy<'_>,
    model_version: u64,
    cache: &mut ScoreCache,
) -> Option<usize> {
    match policy {
        Policy::MaxPredictedFps(model) => {
            select_server_incremental(occupancy, request, *model, model_version, cache)
                .map(|sel| sel.server)
        }
        _ => select_server(occupancy, request, policy),
    }
}

/// Choose a server for one arriving session under `policy`, or `None` when
/// no server is eligible. The stateless baseline: `MaxPredictedFps` here
/// recomputes every candidate's full [`placement_delta`] from scratch
/// (the online paths use [`select_server_incremental_with`] instead).
pub fn select_server<V: OccupancyView + ?Sized>(
    occupancy: &V,
    request: Placement,
    policy: &Policy<'_>,
) -> Option<usize> {
    let eligible = eligible_servers(occupancy, request.0);
    if eligible.is_empty() {
        return None;
    }
    let chosen =
        match policy {
            Policy::FirstFit => eligible[0],
            Policy::WorstFitVbp(vbp) => *eligible
                .iter()
                .max_by(|&&a, &&b| {
                    vbp.remaining_capacity(occupancy.members(a))
                        .total_cmp(&vbp.remaining_capacity(occupancy.members(b)))
                })
                .expect("non-empty eligible set"),
            Policy::MaxPredictedFps(model) => *eligible
                .iter()
                .max_by(|&&a, &&b| {
                    placement_delta(*model, occupancy.members(a), request)
                        .total_cmp(&placement_delta(*model, occupancy.members(b), request))
                })
                .expect("non-empty eligible set"),
        };
    Some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_gamesim::Resolution;

    const R: Resolution = Resolution::Fhd1080;

    /// Deterministic fake FPS model: a pure function of the colocation, so
    /// the incremental and from-scratch selectors can be compared exactly.
    struct FakeFps;

    impl FpsModel for FakeFps {
        fn predict_member_fps(&self, members: &[Placement], idx: usize) -> f64 {
            let crowd = members.len() as f64;
            let (g, r) = members[idx];
            120.0 / crowd + (g.0 as f64 * 0.37) - (r as u8 as f64 * 1.5)
        }

        fn model_name(&self) -> &'static str {
            "fake"
        }
    }

    #[test]
    fn eligibility_respects_cap_and_duplicates() {
        let occupancy = vec![
            vec![(GameId(0), R); 1],
            vec![
                (GameId(1), R),
                (GameId(2), R),
                (GameId(3), R),
                (GameId(4), R),
            ],
            vec![(GameId(5), R)],
        ];
        // Server 1 is full; server 0 already runs game 0.
        assert_eq!(eligible_servers(&occupancy, GameId(0)), vec![2]);
        assert_eq!(eligible_servers(&occupancy, GameId(9)), vec![0, 2]);
    }

    #[test]
    fn first_fit_picks_lowest_eligible_index() {
        let occupancy = vec![vec![(GameId(7), R)], vec![], vec![]];
        assert_eq!(
            select_server(&occupancy, (GameId(7), R), &Policy::FirstFit),
            Some(1)
        );
        assert_eq!(
            select_server(&occupancy, (GameId(8), R), &Policy::FirstFit),
            Some(0)
        );
    }

    #[test]
    fn saturated_fleet_yields_none() {
        let full = vec![vec![
            (GameId(1), R),
            (GameId(2), R),
            (GameId(3), R),
            (GameId(4), R),
        ]];
        assert_eq!(
            select_server(&full, (GameId(9), R), &Policy::FirstFit),
            None
        );
        let mut cache = ScoreCache::new(1);
        assert_eq!(
            select_server_incremental(&full, (GameId(9), R), &FakeFps, 1, &mut cache),
            None
        );
    }

    #[test]
    fn incremental_selection_matches_full_recompute() {
        // A mixed fleet: empty, lightly and heavily loaded servers.
        let occupancy = vec![
            vec![],
            vec![(GameId(3), R), (GameId(8), Resolution::Hd720)],
            vec![(GameId(1), R)],
            vec![(GameId(2), R), (GameId(5), R), (GameId(9), R)],
            vec![(GameId(4), R); 1],
        ];
        let mut cache = ScoreCache::new(occupancy.len());
        for g in [0u32, 6, 7, 11, 13] {
            let request = (GameId(g), R);
            let full = select_server(&occupancy, request, &Policy::MaxPredictedFps(&FakeFps));
            let mut fresh = ScoreCache::new(occupancy.len());
            let inc = select_server_incremental(&occupancy, request, &FakeFps, 1, &mut fresh)
                .map(|s| s.server);
            assert_eq!(full, inc, "game {g} (cold cache)");
            // A warm cache (possibly stale from hypothetical admits) is
            // reset here so the comparison stays against the same fleet.
            cache.invalidate_all();
            let warm = select_server_incremental(&occupancy, request, &FakeFps, 1, &mut cache)
                .map(|s| s.server);
            assert_eq!(full, warm, "game {g} (warm cache)");
        }
    }

    #[test]
    fn explicit_scratch_selection_matches_the_wrapper() {
        let occupancy = vec![
            vec![],
            vec![(GameId(3), R), (GameId(8), Resolution::Hd720)],
            vec![(GameId(1), R)],
            vec![(GameId(2), R), (GameId(5), R), (GameId(9), R)],
        ];
        let mut scratch = PlacementScratch::new();
        for g in [0u32, 6, 7, 11, 13] {
            let request = (GameId(g), R);
            let mut c1 = ScoreCache::new(occupancy.len());
            let mut c2 = ScoreCache::new(occupancy.len());
            let wrapped = select_server_incremental(&occupancy, request, &FakeFps, 1, &mut c1);
            let explicit = select_server_incremental_with(
                &occupancy,
                request,
                &FakeFps,
                1,
                &mut c2,
                &mut scratch,
            );
            assert_eq!(wrapped, explicit, "game {g}");
            assert_eq!(c1.counts(), c2.counts(), "game {g}");
        }
    }

    #[test]
    fn incremental_delta_equals_placement_delta() {
        let occupancy = vec![vec![(GameId(1), R), (GameId(2), R)], vec![(GameId(3), R)]];
        let request = (GameId(7), R);
        let mut cache = ScoreCache::new(2);
        let sel = select_server_incremental(&occupancy, request, &FakeFps, 1, &mut cache).unwrap();
        let direct = placement_delta(&FakeFps, &occupancy[sel.server], request);
        assert!((sel.delta - direct).abs() < 1e-12);
    }

    #[test]
    fn score_cache_hits_after_warmup_and_invalidates_on_version_bump() {
        let occupancy = vec![vec![(GameId(1), R)], vec![(GameId(2), R)], vec![]];
        let mut cache = ScoreCache::new(3);
        // Cold: every eligible server misses. The selection seeds the
        // chosen server's post-admit sum, but the occupancy here does not
        // change, so drop that entry before re-scoring.
        let sel =
            select_server_incremental(&occupancy, (GameId(5), R), &FakeFps, 1, &mut cache).unwrap();
        assert_eq!(cache.counts(), (0, 3));
        cache.invalidate(sel.server);
        // Warm: the untouched servers hit.
        select_server_incremental(&occupancy, (GameId(6), R), &FakeFps, 1, &mut cache).unwrap();
        let (hits, misses) = cache.counts();
        assert_eq!(hits, 2);
        assert_eq!(misses, 4);
        // A model-version bump turns every entry stale.
        select_server_incremental(&occupancy, (GameId(6), R), &FakeFps, 2, &mut cache).unwrap();
        let (hits2, misses2) = cache.counts();
        assert_eq!(hits2, hits);
        assert_eq!(misses2, misses + 3);
    }

    #[test]
    fn rollback_restores_the_pre_admit_sum_bit_exactly() {
        let occupancy: Vec<Vec<Placement>> = vec![vec![(GameId(1), R)], vec![(GameId(2), R)]];
        let mut cache = ScoreCache::new(2);
        let sel =
            select_server_incremental(&occupancy, (GameId(5), R), &FakeFps, 1, &mut cache).unwrap();
        cache.rollback(sel.server, 1, sel.server_sum, sel.before_sum);
        // The restored entry must be indistinguishable from a fresh cache:
        // re-scoring the unchanged fleet picks the same server with the same
        // sums, and it does so from a cache *hit* on the rolled-back server.
        let (_, misses_before) = cache.counts();
        let again =
            select_server_incremental(&occupancy, (GameId(5), R), &FakeFps, 1, &mut cache).unwrap();
        assert_eq!(sel, again);
        let (_, misses_after) = cache.counts();
        assert_eq!(
            misses_before, misses_after,
            "rollback should restore, not invalidate"
        );
    }

    #[test]
    fn rollback_of_a_superseded_entry_invalidates_instead() {
        let mut cache = ScoreCache::new(1);
        // Another admission already replaced the entry being rolled back.
        cache.store(0, 1, 10.0);
        cache.rollback(0, 1, 11.0, 9.0);
        assert_eq!(cache.probe(0, 1), None);
        // A version bump likewise drops the entry rather than restoring a
        // sum computed under a stale model.
        cache.store(0, 2, 11.0);
        cache.rollback(0, 1, 11.0, 9.0);
        assert_eq!(cache.probe(0, 2), None);
    }

    #[test]
    fn shard_ranking_orders_by_delta_with_low_shard_ties() {
        let sel = |delta: f64| {
            Some(Selection {
                server: 0,
                delta,
                server_sum: 0.0,
                before_sum: 0.0,
            })
        };
        let mut out = Vec::new();
        rank_shard_selections(&[sel(1.0), None, sel(5.0), sel(1.0), sel(-2.0)], &mut out);
        // 5.0 first, then the two tied 1.0s in ascending shard order, then
        // the negative delta; the shard with no candidate never appears.
        assert_eq!(out, vec![2, 0, 3, 4]);

        rank_shard_selections(&[None, None], &mut out);
        assert!(out.is_empty());

        // NaN-free total order: -0.0 and 0.0 rank deterministically.
        rank_shard_selections(&[sel(0.0), sel(-0.0)], &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn sharded_scoring_agrees_with_whole_fleet_scoring() {
        // Score a 6-server fleet as one domain and as 3 two-server shards;
        // the cross-shard argmax must land on the same global server.
        let occupancy: Vec<Vec<Placement>> = vec![
            vec![(GameId(1), R), (GameId(2), R)],
            vec![],
            vec![(GameId(3), R)],
            vec![(GameId(4), R), (GameId(5), R), (GameId(6), R)],
            vec![(GameId(7), R)],
            vec![(GameId(8), R), (GameId(9), R)],
        ];
        for g in [0u32, 5, 10, 12] {
            let request = (GameId(g), R);
            let whole = select_server(&occupancy, request, &Policy::MaxPredictedFps(&FakeFps));

            let candidates: Vec<Option<Selection>> = occupancy
                .chunks(2)
                .map(|shard_occ| {
                    let mut cache = ScoreCache::new(shard_occ.len());
                    select_server_incremental(shard_occ, request, &FakeFps, 1, &mut cache)
                })
                .collect();
            let mut ranked = Vec::new();
            rank_shard_selections(&candidates, &mut ranked);
            let global = ranked
                .first()
                .map(|&shard| shard * 2 + candidates[shard].as_ref().expect("ranked Some").server);
            assert_eq!(whole, global, "game {g}");
        }
    }

    #[test]
    fn admit_contract_keeps_cache_consistent() {
        // Simulate the daemon loop: select, admit, repeat; then verify the
        // cached sums equal freshly computed ones.
        let mut occupancy: Vec<Vec<Placement>> = vec![vec![], vec![], vec![]];
        let mut cache = ScoreCache::new(3);
        for g in 0..6u32 {
            let request = (GameId(g), R);
            let sel = select_server_incremental(&occupancy, request, &FakeFps, 1, &mut cache)
                .expect("fleet has room");
            occupancy[sel.server].push(request);
            let fresh = FakeFps.predict_colocation_sum(&occupancy[sel.server]);
            assert!(
                (sel.server_sum - fresh).abs() < 1e-12,
                "cached sum diverged after admitting game {g}"
            );
        }
    }
}
