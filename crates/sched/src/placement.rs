//! Incremental placement: score one arriving session against a live fleet.
//!
//! [`simulate_dynamic`](crate::dynamic::simulate_dynamic) originally held
//! this logic inline, which made it unusable from anything that is not the
//! discrete-event simulator. The serving daemon (`gaugur-serve`) faces the
//! same decision — one request, one snapshot of fleet occupancy, pick a
//! server — so the eligibility filter and the per-policy argmax live here
//! and both callers share them.

use crate::dynamic::Policy;
use crate::maxfps::MAX_PER_SERVER;
use gaugur_core::Placement;
use gaugur_gamesim::GameId;

/// Indices of servers that can legally accept `game`: below the per-server
/// session cap and not already running the same game (two instances of one
/// game on one GPU is not a configuration the paper's testbed measures, so
/// the models are undefined on it).
pub fn eligible_servers(occupancy: &[Vec<Placement>], game: GameId) -> Vec<usize> {
    (0..occupancy.len())
        .filter(|&s| {
            occupancy[s].len() < MAX_PER_SERVER && !occupancy[s].iter().any(|&(g, _)| g == game)
        })
        .collect()
}

/// Predicted change in a server's summed FPS if `candidate` joins `members`.
/// The delta-greedy objective of Section 5.2: existing sessions' predicted
/// losses count against the newcomer's predicted gain.
pub fn placement_delta(
    model: &dyn crate::FpsModel,
    members: &[Placement],
    candidate: Placement,
) -> f64 {
    let before: f64 = (0..members.len())
        .map(|i| model.predict_member_fps(members, i))
        .sum();
    let mut extended = members.to_vec();
    extended.push(candidate);
    let after: f64 = (0..extended.len())
        .map(|i| model.predict_member_fps(&extended, i))
        .sum();
    after - before
}

/// Choose a server for one arriving session under `policy`, or `None` when
/// no server is eligible. `occupancy[s]` is the multiset of placements
/// currently running on server `s`.
pub fn select_server(
    occupancy: &[Vec<Placement>],
    request: Placement,
    policy: &Policy<'_>,
) -> Option<usize> {
    let eligible = eligible_servers(occupancy, request.0);
    if eligible.is_empty() {
        return None;
    }
    let chosen = match policy {
        Policy::FirstFit => eligible[0],
        Policy::WorstFitVbp(vbp) => *eligible
            .iter()
            .max_by(|&&a, &&b| {
                vbp.remaining_capacity(&occupancy[a])
                    .total_cmp(&vbp.remaining_capacity(&occupancy[b]))
            })
            .expect("non-empty eligible set"),
        Policy::MaxPredictedFps(model) => *eligible
            .iter()
            .max_by(|&&a, &&b| {
                placement_delta(*model, &occupancy[a], request).total_cmp(&placement_delta(
                    *model,
                    &occupancy[b],
                    request,
                ))
            })
            .expect("non-empty eligible set"),
    };
    Some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_gamesim::Resolution;

    const R: Resolution = Resolution::Fhd1080;

    #[test]
    fn eligibility_respects_cap_and_duplicates() {
        let occupancy = vec![
            vec![(GameId(0), R); 1],
            vec![
                (GameId(1), R),
                (GameId(2), R),
                (GameId(3), R),
                (GameId(4), R),
            ],
            vec![(GameId(5), R)],
        ];
        // Server 1 is full; server 0 already runs game 0.
        assert_eq!(eligible_servers(&occupancy, GameId(0)), vec![2]);
        assert_eq!(eligible_servers(&occupancy, GameId(9)), vec![0, 2]);
    }

    #[test]
    fn first_fit_picks_lowest_eligible_index() {
        let occupancy = vec![vec![(GameId(7), R)], vec![], vec![]];
        assert_eq!(
            select_server(&occupancy, (GameId(7), R), &Policy::FirstFit),
            Some(1)
        );
        assert_eq!(
            select_server(&occupancy, (GameId(8), R), &Policy::FirstFit),
            Some(0)
        );
    }

    #[test]
    fn saturated_fleet_yields_none() {
        let full = vec![vec![
            (GameId(1), R),
            (GameId(2), R),
            (GameId(3), R),
            (GameId(4), R),
        ]];
        assert_eq!(
            select_server(&full, (GameId(9), R), &Policy::FirstFit),
            None
        );
    }
}
