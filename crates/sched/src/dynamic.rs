//! Dynamic session scheduling: a discrete-event simulation of a live
//! cloud-gaming cluster.
//!
//! The paper's Section 5 packs a *static* batch of requests. A real
//! front-end faces a stream: sessions arrive (Poisson), play for a while
//! (exponential duration) and leave. This module replays such a stream
//! against a placement policy and measures, with the ground-truth simulator,
//! the time-weighted FPS and QoS-violation rate the players actually
//! experienced — the natural online extension of the paper's evaluation.

use crate::placement::{select_server_cached, ScoreCache};
use crate::FpsModel;
use gaugur_baselines::VbpPolicy;
use gaugur_core::Placement;
use gaugur_gamesim::rng::rng_for;
use gaugur_gamesim::{GameCatalog, GameId, Resolution, Server, Workload};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of a dynamic-arrival experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DynamicConfig {
    /// Number of servers in the fleet.
    pub n_servers: usize,
    /// Mean session arrivals per simulated second.
    pub arrival_rate: f64,
    /// Mean session length in simulated seconds (exponential).
    pub mean_session_seconds: f64,
    /// Total simulated time in seconds.
    pub duration_seconds: f64,
    /// QoS frame-rate floor used for violation accounting.
    pub qos: f64,
    /// Seed for arrivals, game choice and session lengths.
    pub seed: u64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            n_servers: 50,
            arrival_rate: 0.5,
            mean_session_seconds: 600.0,
            duration_seconds: 3600.0,
            qos: 60.0,
            seed: 0,
        }
    }
}

/// Placement policy for arriving sessions.
pub enum Policy<'a> {
    /// Interference-aware: maximize the predicted cluster FPS delta
    /// (GAugur-style, Section 5.2).
    MaxPredictedFps(&'a dyn FpsModel),
    /// Interference-blind worst-fit on VBP remaining capacity.
    WorstFitVbp(&'a VbpPolicy),
    /// Naive first-fit (lowest-index eligible server).
    FirstFit,
}

/// Time-weighted outcome of a dynamic run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DynamicResult {
    /// Sessions placed.
    pub sessions_served: usize,
    /// Sessions rejected because no eligible server existed.
    pub sessions_rejected: usize,
    /// Time-weighted mean FPS across all live sessions.
    pub mean_fps: f64,
    /// Fraction of session-time spent below the QoS floor.
    pub violation_fraction: f64,
    /// Time-weighted mean number of games per non-empty server.
    pub mean_colocation_size: f64,
}

/// One live session on a server.
#[derive(Debug, Clone, Copy)]
struct Session {
    game: GameId,
    departs_at: f64,
}

/// Run a dynamic-arrival experiment.
pub fn simulate_dynamic(
    server: &Server,
    catalog: &GameCatalog,
    games: &[GameId],
    resolution: Resolution,
    policy: &Policy<'_>,
    config: &DynamicConfig,
) -> DynamicResult {
    assert!(!games.is_empty(), "need at least one game");
    assert!(config.arrival_rate > 0.0 && config.mean_session_seconds > 0.0);

    let mut rng = rng_for(config.seed, &[0x44_594e]);
    let mut servers: Vec<Vec<Session>> = vec![Vec::new(); config.n_servers];
    let mut fps_cache: HashMap<Vec<u32>, Vec<f64>> = HashMap::new();
    // Incremental placement scores, shared logic with the serving daemon.
    // The simulator never reloads its model, so the version is constant.
    let mut scores = ScoreCache::new(config.n_servers);

    // Ground-truth FPS of every member of one server's current contents.
    let mut measured_fps = |contents: &[Session]| -> Vec<f64> {
        let mut key: Vec<u32> = contents.iter().map(|s| s.game.0).collect();
        key.sort_unstable();
        fps_cache
            .entry(key)
            .or_insert_with(|| {
                let ws: Vec<Workload<'_>> = contents
                    .iter()
                    .map(|s| Workload::game(catalog.get(s.game).expect("id"), resolution))
                    .collect();
                let out = server.measure_colocation(&ws);
                (0..contents.len())
                    .map(|i| out.game_fps(i).expect("game"))
                    .collect()
            })
            .clone()
    };

    let mut now = 0.0_f64;
    let mut next_arrival = exponential(&mut rng, config.arrival_rate);
    let mut served = 0usize;
    let mut rejected = 0usize;

    // Time-weighted accumulators.
    let mut fps_time = 0.0_f64; // Σ fps · dt over all live sessions
    let mut session_time = 0.0_f64; // Σ dt over all live sessions
    let mut violation_time = 0.0_f64; // Σ dt where fps < qos
    let mut size_time = 0.0_f64; // Σ size · dt over non-empty servers
    let mut busy_time = 0.0_f64; // Σ dt over non-empty servers

    while now < config.duration_seconds {
        // Next event: an arrival or the earliest departure.
        let next_departure = servers
            .iter()
            .flatten()
            .map(|s| s.departs_at)
            .fold(f64::INFINITY, f64::min);
        let event_t = next_arrival
            .min(next_departure)
            .min(config.duration_seconds);
        let dt = event_t - now;

        // Accumulate the interval [now, event_t).
        if dt > 0.0 {
            for contents in servers.iter().filter(|c| !c.is_empty()) {
                // Borrow juggling: measure without holding `servers` mutably.
                let fps = {
                    let snapshot = contents.clone();
                    measured_fps(&snapshot)
                };
                for f in fps {
                    fps_time += f * dt;
                    session_time += dt;
                    if f < config.qos {
                        violation_time += dt;
                    }
                }
                size_time += contents.len() as f64 * dt;
                busy_time += dt;
            }
        }
        now = event_t;
        if now >= config.duration_seconds {
            break;
        }

        if next_departure <= next_arrival {
            // Process the departure.
            for (idx, contents) in servers.iter_mut().enumerate() {
                if let Some(pos) = contents.iter().position(|s| s.departs_at == next_departure) {
                    contents.remove(pos);
                    scores.invalidate(idx);
                    break;
                }
            }
            continue;
        }

        // Process the arrival: snapshot occupancy and delegate the decision
        // to the shared incremental placement logic.
        next_arrival = now + exponential(&mut rng, config.arrival_rate);
        let game = games[rng.gen_range(0..games.len())];
        let occupancy: Vec<Vec<Placement>> = servers
            .iter()
            .map(|c| c.iter().map(|s| (s.game, resolution)).collect())
            .collect();
        let Some(chosen) =
            select_server_cached(&occupancy, (game, resolution), policy, 1, &mut scores)
        else {
            rejected += 1;
            continue;
        };
        let length = exponential(&mut rng, 1.0 / config.mean_session_seconds);
        servers[chosen].push(Session {
            game,
            departs_at: now + length,
        });
        served += 1;
    }

    DynamicResult {
        sessions_served: served,
        sessions_rejected: rejected,
        mean_fps: fps_time / session_time.max(1e-9),
        violation_fraction: violation_time / session_time.max(1e-9),
        mean_colocation_size: size_time / busy_time.max(1e-9),
    }
}

/// Exponential variate with rate `lambda`.
fn exponential(rng: &mut impl Rng, lambda: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Server, GameCatalog, Vec<GameId>) {
        let server = Server::reference(61);
        let catalog = GameCatalog::generate(42, 12);
        let games: Vec<GameId> = catalog.games().iter().take(8).map(|g| g.id).collect();
        (server, catalog, games)
    }

    #[test]
    fn first_fit_serves_a_light_stream_without_rejections() {
        let (server, catalog, games) = setup();
        let config = DynamicConfig {
            n_servers: 40,
            arrival_rate: 0.05,
            mean_session_seconds: 300.0,
            duration_seconds: 2000.0,
            qos: 30.0,
            seed: 1,
        };
        let r = simulate_dynamic(
            &server,
            &catalog,
            &games,
            Resolution::Fhd1080,
            &Policy::FirstFit,
            &config,
        );
        assert!(r.sessions_served > 30, "{r:?}");
        assert_eq!(r.sessions_rejected, 0);
        assert!(r.mean_fps > 0.0);
        assert!((0.0..=1.0).contains(&r.violation_fraction));
        assert!(r.mean_colocation_size >= 1.0);
    }

    #[test]
    fn saturated_fleet_rejects_sessions() {
        let (server, catalog, games) = setup();
        let config = DynamicConfig {
            n_servers: 2,
            arrival_rate: 0.5,
            mean_session_seconds: 2000.0,
            duration_seconds: 1500.0,
            qos: 60.0,
            seed: 2,
        };
        let r = simulate_dynamic(
            &server,
            &catalog,
            &games,
            Resolution::Fhd1080,
            &Policy::FirstFit,
            &config,
        );
        assert!(r.sessions_rejected > 0, "{r:?}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let (server, catalog, games) = setup();
        let config = DynamicConfig {
            n_servers: 10,
            arrival_rate: 0.1,
            mean_session_seconds: 300.0,
            duration_seconds: 1000.0,
            qos: 60.0,
            seed: 3,
        };
        let a = simulate_dynamic(
            &server,
            &catalog,
            &games,
            Resolution::Fhd1080,
            &Policy::FirstFit,
            &config,
        );
        let b = simulate_dynamic(
            &server,
            &catalog,
            &games,
            Resolution::Fhd1080,
            &Policy::FirstFit,
            &config,
        );
        assert_eq!(a.sessions_served, b.sessions_served);
        assert_eq!(a.mean_fps, b.mean_fps);
    }

    #[test]
    fn tighter_fleets_colocate_more_and_violate_more() {
        let (server, catalog, games) = setup();
        let base = DynamicConfig {
            arrival_rate: 0.2,
            mean_session_seconds: 600.0,
            duration_seconds: 2000.0,
            qos: 60.0,
            seed: 4,
            ..DynamicConfig::default()
        };
        let wide = simulate_dynamic(
            &server,
            &catalog,
            &games,
            Resolution::Fhd1080,
            &Policy::FirstFit,
            &DynamicConfig {
                n_servers: 200,
                ..base
            },
        );
        let tight = simulate_dynamic(
            &server,
            &catalog,
            &games,
            Resolution::Fhd1080,
            &Policy::FirstFit,
            &DynamicConfig {
                n_servers: 12,
                ..base
            },
        );
        assert!(tight.mean_colocation_size > wide.mean_colocation_size);
        // Only the tight fleet is capacity-bound: it must turn sessions away
        // while the wide fleet absorbs the whole stream.
        assert!(tight.sessions_rejected > 0);
        assert_eq!(wide.sessions_rejected, 0);
        // FirstFit packs both fleets densely (mean colocation size ~3.6-3.9
        // either way), so the mean-FPS gap between them is a second-order
        // effect of rejection pressure and sits inside arrival-stream noise
        // (observed band: tight/wide FPS ratio 0.97-1.03 across seeds).
        // Assert the ratio stays in that band rather than a strict ordering.
        assert!(
            tight.mean_fps < wide.mean_fps * 1.05,
            "tight {} vs wide {}",
            tight.mean_fps,
            wide.mean_fps
        );
    }
}
