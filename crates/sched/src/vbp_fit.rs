//! VBP worst-fit assignment (paper Section 5.2).
//!
//! "For the VBP, the gaming requests are assigned in a worst-fit manner,
//! where each request is assigned to the server with the largest remaining
//! capacity (the remaining capacity of a server is measured by the total
//! remaining capacity of all the shared resources except for LLC and
//! GPU-L2)."

use crate::maxfps::{MaxFpsResult, MAX_PER_SERVER};
use gaugur_baselines::VbpPolicy;
use gaugur_core::Placement;
use gaugur_gamesim::{GameId, Resolution};

/// Assign a request stream onto `n_servers` servers worst-fit by remaining
/// VBP capacity. Returns the same result shape as the max-FPS greedy so the
/// evaluation harness treats all methodologies uniformly.
pub fn assign_worst_fit(
    policy: &VbpPolicy,
    resolution: Resolution,
    requests: &[GameId],
    n_servers: usize,
) -> MaxFpsResult {
    let mut servers: Vec<Vec<GameId>> = vec![Vec::new(); n_servers];
    let mut capacities: Vec<f64> = servers
        .iter()
        .map(|s| remaining(policy, s, resolution))
        .collect();
    let mut unplaced = 0;

    for &game in requests {
        let mut best: Option<(usize, f64)> = None;
        for (s, members) in servers.iter().enumerate() {
            if members.len() >= MAX_PER_SERVER || members.contains(&game) {
                continue;
            }
            if best.is_none_or(|(_, c)| capacities[s] > c) {
                best = Some((s, capacities[s]));
            }
        }
        match best {
            Some((s, _)) => {
                servers[s].push(game);
                capacities[s] = remaining(policy, &servers[s], resolution);
            }
            None => unplaced += 1,
        }
    }

    MaxFpsResult { servers, unplaced }
}

fn remaining(policy: &VbpPolicy, members: &[GameId], resolution: Resolution) -> f64 {
    let placements: Vec<Placement> = members.iter().map(|&g| (g, resolution)).collect();
    policy.remaining_capacity(&placements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_gamesim::GameCatalog;

    #[test]
    fn worst_fit_balances_load() {
        let catalog = GameCatalog::generate(42, 8);
        let policy = VbpPolicy::from_catalog(&catalog);
        let ids: Vec<GameId> = catalog.games().iter().map(|g| g.id).collect();
        let requests: Vec<GameId> = ids.iter().copied().cycle().take(16).collect();
        let result = assign_worst_fit(&policy, Resolution::Fhd1080, &requests, 8);
        assert_eq!(result.unplaced, 0);
        let placed: usize = result.servers.iter().map(Vec::len).sum();
        assert_eq!(placed, 16);
        // An empty server always has the maximum remaining capacity, so
        // worst-fit never leaves a server idle while doubling up elsewhere.
        let min = result.servers.iter().map(Vec::len).min().unwrap();
        assert!(min >= 1, "{:?}", result.servers);
        // Capacity-based worst-fit balances *capacity*, not counts: servers
        // hosting light games legitimately attract more requests, but never
        // beyond the colocation cap.
        let max = result.servers.iter().map(Vec::len).max().unwrap();
        assert!(max <= MAX_PER_SERVER);
    }

    #[test]
    fn respects_distinctness_and_capacity() {
        let catalog = GameCatalog::generate(42, 3);
        let policy = VbpPolicy::from_catalog(&catalog);
        let requests: Vec<GameId> = vec![GameId(0); 4];
        let result = assign_worst_fit(&policy, Resolution::Fhd1080, &requests, 2);
        let placed: usize = result.servers.iter().map(Vec::len).sum();
        assert_eq!(placed, 2);
        assert_eq!(result.unplaced, 2);
    }
}
