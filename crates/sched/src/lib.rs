//! # gaugur-sched — interference-aware game request assignment
//!
//! Section 5 of the GAugur paper applies the prediction models to two
//! scheduling problems:
//!
//! 1. **Minimizing resource usage with QoS guarantees** (Section 5.1,
//!    [`algorithm1`]): pack a stream of gaming requests onto as few servers
//!    as possible such that every colocated game keeps its QoS frame rate —
//!    a greedy set-cover over the feasible colocations (approximation ratio
//!    `ln k`).
//! 2. **Maximizing overall performance** (Section 5.2, [`maxfps`]): pack the
//!    requests onto a *fixed* fleet so the average frame rate is maximal —
//!    an online greedy guided by predicted FPS, against VBP worst-fit
//!    ([`vbp_fit`]).
//!
//! The [`dynamic`] module extends the static problems with a discrete-event
//! simulation of live session arrivals and departures.
//!
//! The [`coloc`] module enumerates and measures the candidate colocations
//! (the 385 ≤4-game subsets of 10 games used throughout the paper's Figures
//! 9–10) and [`eval`] scores final placements against the simulator's ground
//! truth.
//!
//! ## The batched scoring hot path
//!
//! Every interference model enters the scheduler through
//! [`InterferencePredictor`] (re-exported from `gaugur-core`), wrapped by
//! [`PredictorFps`] into the [`FpsModel`] / [`FeasibilityModel`] vocabulary
//! the greedies speak. The hot path is
//! [`FpsModel::predict_colocation_sums`]: one call scores a whole
//! [`ColocationBatch`] of candidate colocations, and predictors with a
//! fused batch evaluator (GAugur) answer it with a single feature-matrix
//! assembly and one tree-major ensemble pass — bit-identical to the scalar
//! per-member loop by contract.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm1;
pub mod coloc;
pub mod dynamic;
pub mod eval;
pub mod maxfps;
pub mod placement;
pub mod requests;
pub mod vbp_fit;

pub use algorithm1::{pack_requests, PackingResult};
pub use coloc::{enumerate_subsets, ColocationTable, FeasibilityReport};
pub use dynamic::{simulate_dynamic, DynamicConfig, DynamicResult, Policy};
pub use eval::{evaluate_cluster, ClusterEvaluation};
pub use maxfps::{assign_max_fps, MaxFpsResult};
pub use placement::{
    eligible_servers, placement_delta, rank_shard_selections, select_server, select_server_cached,
    select_server_incremental, select_server_incremental_with, OccupancyView, PlacementScratch,
    ScoreCache, Selection,
};
pub use requests::{random_requests, RequestCounts};
pub use vbp_fit::assign_worst_fit;

use gaugur_core::{
    DegradationBatch, FeatureBuffer, GAugur, InterferencePredictor, Placement, ProfileStore,
};
use rayon::prelude::*;

/// Colocation batches at least this wide are scored in parallel by the
/// default [`FpsModel::predict_colocation_sums`]; below it the per-task
/// overhead outweighs the parallelism.
pub const PAR_SCORE_THRESHOLD: usize = 8;

/// A batch of prospective colocations to score together: member lists are
/// stored back to back in one flat pool, so refilling each decision round
/// allocates nothing once the backing storage has grown.
#[derive(Debug, Default)]
pub struct ColocationBatch {
    pool: Vec<Placement>,
    spans: Vec<(usize, usize)>,
}

impl ColocationBatch {
    /// A fresh, empty batch.
    pub fn new() -> ColocationBatch {
        ColocationBatch::default()
    }

    /// Drop all colocations, keeping capacity.
    pub fn clear(&mut self) {
        self.pool.clear();
        self.spans.clear();
    }

    /// Number of colocations queued.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no colocations are queued.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Queue one colocation.
    pub fn push(&mut self, members: &[Placement]) {
        let start = self.pool.len();
        self.pool.extend_from_slice(members);
        self.spans.push((start, members.len()));
    }

    /// Queue `members` with `extra` appended — the "what if this candidate
    /// joins" colocation, assembled without a temporary `Vec`.
    pub fn push_extended(&mut self, members: &[Placement], extra: Placement) {
        let start = self.pool.len();
        self.pool.extend_from_slice(members);
        self.pool.push(extra);
        self.spans.push((start, members.len() + 1));
    }

    /// The members of colocation `i`.
    pub fn members(&self, i: usize) -> &[Placement] {
        let (start, len) = self.spans[i];
        &self.pool[start..start + len]
    }
}

/// Reusable scratch for batched FPS scoring: the degradation query plan,
/// the feature buffers it is answered through, and the per-query results.
/// One per worker; a scoring call borrows it, overwrites its contents and
/// leaves the grown capacity behind (same ownership rule as
/// [`FeatureBuffer`]).
#[derive(Default)]
pub struct PredictScratch {
    /// Degradation queries assembled from the colocation batch.
    pub queries: DegradationBatch,
    /// Feature-assembly scratch threaded into the predictor.
    pub features: FeatureBuffer,
    /// Per-query degradation ratios returned by the predictor.
    pub values: Vec<f64>,
    /// General-purpose index scratch for implementations.
    pub indices: Vec<usize>,
}

impl PredictScratch {
    /// A fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> PredictScratch {
        PredictScratch::default()
    }
}

/// A methodology that predicts the absolute FPS of each member of a
/// prospective colocation (drives the Section 5.2 greedy).
pub trait FpsModel: Sync {
    /// Predicted FPS of `members[idx]` when all of `members` share a server.
    fn predict_member_fps(&self, members: &[Placement], idx: usize) -> f64;

    /// Predicted summed FPS over every member of a colocation. The default
    /// sums per-member predictions; serving-side implementations may
    /// override it with a whole-colocation memo so the placement hot path
    /// pays one lookup per candidate server instead of one per member.
    fn predict_colocation_sum(&self, members: &[Placement]) -> f64 {
        (0..members.len())
            .map(|i| self.predict_member_fps(members, i))
            .sum()
    }

    /// Predicted summed FPS of every colocation in `batch`, written to
    /// `out` (cleared first) in batch order. Must agree with
    /// [`predict_colocation_sum`](FpsModel::predict_colocation_sum) per
    /// colocation. The default loops (in parallel past
    /// [`PAR_SCORE_THRESHOLD`]); batched models override it with one fused
    /// evaluation through the scratch buffers.
    fn predict_colocation_sums(
        &self,
        batch: &ColocationBatch,
        _scratch: &mut PredictScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if batch.len() >= PAR_SCORE_THRESHOLD {
            out.extend(
                (0..batch.len())
                    .into_par_iter()
                    .map(|i| self.predict_colocation_sum(batch.members(i))),
            );
        } else {
            for i in 0..batch.len() {
                out.push(self.predict_colocation_sum(batch.members(i)));
            }
        }
    }

    /// Display name for result tables.
    fn model_name(&self) -> &'static str;
}

/// A methodology that judges whether an entire colocation meets a QoS floor
/// (drives the Section 5.1 packing).
pub trait FeasibilityModel: Sync {
    /// Whether every member of `members` is predicted to reach `qos` FPS.
    fn feasible(&self, qos: f64, members: &[Placement]) -> bool;

    /// Display name for result tables.
    fn judge_name(&self) -> &'static str;
}

/// The shared batched-scoring body behind every
/// [`FpsModel::predict_colocation_sums`] override in the workspace: queue
/// one degradation query per colocation member (pooling each colocation's
/// intensity gather via
/// [`DegradationBatch::push_colocation`]), answer them all in one
/// [`predict_degradation_batch`](InterferencePredictor::predict_degradation_batch)
/// call, then reduce member FPS (degradation × Eq.-2 solo) per colocation.
/// Summation runs in member order, so the result is bit-identical to the
/// scalar `Σ predict_member_fps` loop.
pub fn predictor_colocation_sums<P: InterferencePredictor + ?Sized>(
    predictor: &P,
    profiles: &ProfileStore,
    batch: &ColocationBatch,
    scratch: &mut PredictScratch,
    out: &mut Vec<f64>,
) {
    scratch.queries.clear();
    for i in 0..batch.len() {
        scratch.queries.push_colocation(batch.members(i));
    }
    predictor.predict_degradation_batch(
        &scratch.queries,
        &mut scratch.features,
        &mut scratch.values,
    );
    out.clear();
    let mut q = 0;
    for i in 0..batch.len() {
        // -0.0 is `Iterator::sum::<f64>()`'s additive identity; starting
        // from it keeps even the empty colocation bit-identical to the
        // scalar `Σ predict_member_fps` path.
        let mut sum = -0.0;
        for &(id, res) in batch.members(i) {
            sum += scratch.values[q] * profiles.get(id).solo_fps_at(res);
            q += 1;
        }
        out.push(sum);
    }
}

/// GAugur's regression model as an FPS predictor.
pub struct GaugurRm<'a>(pub &'a GAugur);

impl FpsModel for GaugurRm<'_> {
    fn predict_member_fps(&self, members: &[Placement], idx: usize) -> f64 {
        let others: Vec<Placement> = members
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != idx)
            .map(|(_, &p)| p)
            .collect();
        self.0.predict_fps(members[idx], &others)
    }

    fn predict_colocation_sums(
        &self,
        batch: &ColocationBatch,
        scratch: &mut PredictScratch,
        out: &mut Vec<f64>,
    ) {
        predictor_colocation_sums(self.0, &self.0.profiles, batch, scratch, out);
    }

    fn model_name(&self) -> &'static str {
        "GAugur(RM)"
    }
}

impl FeasibilityModel for GaugurRm<'_> {
    fn feasible(&self, qos: f64, members: &[Placement]) -> bool {
        if let [solo] = members {
            return solo_feasible(&self.0.profiles, *solo, qos);
        }
        (0..members.len()).all(|i| self.predict_member_fps(members, i) >= qos)
    }

    fn judge_name(&self) -> &'static str {
        "GAugur(RM)"
    }
}

/// GAugur's classification model as a feasibility judge.
pub struct GaugurCm<'a>(pub &'a GAugur);

impl FeasibilityModel for GaugurCm<'_> {
    fn feasible(&self, qos: f64, members: &[Placement]) -> bool {
        if let [solo] = members {
            return solo_feasible(&self.0.profiles, *solo, qos);
        }
        self.0.colocation_feasible(qos, members)
    }

    fn judge_name(&self) -> &'static str {
        "GAugur(CM)"
    }
}

/// Adapter: any [`InterferencePredictor`] (Sigmoid, SMiTe, a bare RM, …)
/// plus the profile store becomes an FPS predictor / feasibility judge.
/// Batched scoring flows through [`predictor_colocation_sums`], so a
/// predictor with a fused batch override gets it on the scheduling hot
/// path for free.
pub struct PredictorFps<'a, P: InterferencePredictor + ?Sized> {
    /// The wrapped interference predictor.
    pub predictor: &'a P,
    /// Profiles supplying Eq.-2 solo frame rates.
    pub profiles: &'a ProfileStore,
}

impl<P: InterferencePredictor + ?Sized> FpsModel for PredictorFps<'_, P> {
    fn predict_member_fps(&self, members: &[Placement], idx: usize) -> f64 {
        let target = members[idx];
        let others: Vec<Placement> = members
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != idx)
            .map(|(_, &p)| p)
            .collect();
        let solo = self.profiles.get(target.0).solo_fps_at(target.1);
        self.predictor.predict_degradation(target, &others) * solo
    }

    fn predict_colocation_sums(
        &self,
        batch: &ColocationBatch,
        scratch: &mut PredictScratch,
        out: &mut Vec<f64>,
    ) {
        predictor_colocation_sums(self.predictor, self.profiles, batch, scratch, out);
    }

    fn model_name(&self) -> &'static str {
        self.predictor.name()
    }
}

impl<P: InterferencePredictor + ?Sized> FeasibilityModel for PredictorFps<'_, P> {
    fn feasible(&self, qos: f64, members: &[Placement]) -> bool {
        if let [solo] = members {
            return solo_feasible(self.profiles, *solo, qos);
        }
        (0..members.len()).all(|i| self.predict_member_fps(members, i) >= qos)
    }

    fn judge_name(&self) -> &'static str {
        self.predictor.name()
    }
}

/// A single game running alone suffers no interference, so its feasibility
/// is simply whether its profiled solo frame rate clears the bar — no
/// interference model is involved (they are trained on colocations of two
/// or more games and are undefined for an empty co-runner set).
fn solo_feasible(profiles: &ProfileStore, p: Placement, qos: f64) -> bool {
    profiles.get(p.0).solo_fps_at(p.1) >= qos
}

/// VBP as a feasibility judge (QoS-oblivious by construction).
pub struct VbpJudge<'a>(pub &'a gaugur_baselines::VbpPolicy);

impl FeasibilityModel for VbpJudge<'_> {
    fn feasible(&self, _qos: f64, members: &[Placement]) -> bool {
        self.0.feasible(members)
    }

    fn judge_name(&self) -> &'static str {
        "VBP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_core::{ColocationPlan, GAugurConfig};
    use gaugur_gamesim::{GameCatalog, Resolution, Server};

    fn quick_build() -> (GameCatalog, GAugur) {
        let server = Server::reference(19);
        let catalog = GameCatalog::generate(42, 10);
        let config = GAugurConfig {
            plan: ColocationPlan {
                pairs: 25,
                triples: 8,
                quads: 0,
                seed: 5,
            },
            ..GAugurConfig::default()
        };
        let gaugur = GAugur::build(&server, &catalog, config);
        (catalog, gaugur)
    }

    fn mixed_batch(catalog: &GameCatalog) -> ColocationBatch {
        let res = Resolution::Fhd1080;
        let mut batch = ColocationBatch::new();
        batch.push(&[]);
        batch.push(&[(catalog[0].id, res)]);
        batch.push(&[(catalog[1].id, res), (catalog[2].id, Resolution::Hd720)]);
        batch.push_extended(
            &[(catalog[3].id, res), (catalog[4].id, res)],
            (catalog[5].id, res),
        );
        for w in catalog.games().windows(4) {
            batch.push(&[
                (w[0].id, res),
                (w[1].id, res),
                (w[2].id, res),
                (w[3].id, res),
            ]);
        }
        batch
    }

    #[test]
    fn gaugur_rm_batched_sums_are_bit_identical_to_scalar() {
        let (catalog, gaugur) = quick_build();
        let rm = GaugurRm(&gaugur);
        let batch = mixed_batch(&catalog);
        let mut scratch = PredictScratch::new();
        let mut out = Vec::new();
        rm.predict_colocation_sums(&batch, &mut scratch, &mut out);
        assert_eq!(out.len(), batch.len());
        for (i, &got) in out.iter().enumerate() {
            let scalar = rm.predict_colocation_sum(batch.members(i));
            assert_eq!(
                got.to_bits(),
                scalar.to_bits(),
                "colocation {i}: {got} vs {scalar}"
            );
        }
    }

    #[test]
    fn predictor_fps_batched_sums_match_the_default_loop() {
        let (catalog, gaugur) = quick_build();
        // The bare RM through PredictorFps exercises the shared helper with
        // an InterferencePredictor that has a fused batch override…
        let wrapped = PredictorFps {
            predictor: &gaugur,
            profiles: &gaugur.profiles,
        };
        let batch = mixed_batch(&catalog);
        let mut scratch = PredictScratch::new();
        let mut out = Vec::new();
        wrapped.predict_colocation_sums(&batch, &mut scratch, &mut out);
        for (i, &got) in out.iter().enumerate() {
            assert_eq!(
                got.to_bits(),
                wrapped.predict_colocation_sum(batch.members(i)).to_bits(),
                "colocation {i}"
            );
        }
        // …and the wrapper inherits the predictor's display name.
        assert_eq!(wrapped.model_name(), "GAugur");
        assert_eq!(wrapped.judge_name(), "GAugur");
    }

    #[test]
    fn colocation_batch_reuse_is_clean() {
        let (catalog, _) = quick_build();
        let res = Resolution::Fhd1080;
        let mut batch = ColocationBatch::new();
        batch.push(&[(catalog[0].id, res)]);
        batch.push_extended(&[(catalog[1].id, res)], (catalog[2].id, res));
        assert_eq!(batch.len(), 2);
        assert_eq!(
            batch.members(1),
            &[(catalog[1].id, res), (catalog[2].id, res)]
        );
        batch.clear();
        assert!(batch.is_empty());
        batch.push(&[(catalog[3].id, res)]);
        assert_eq!(batch.members(0), &[(catalog[3].id, res)]);
    }
}
