//! # gaugur-sched — interference-aware game request assignment
//!
//! Section 5 of the GAugur paper applies the prediction models to two
//! scheduling problems:
//!
//! 1. **Minimizing resource usage with QoS guarantees** (Section 5.1,
//!    [`algorithm1`]): pack a stream of gaming requests onto as few servers
//!    as possible such that every colocated game keeps its QoS frame rate —
//!    a greedy set-cover over the feasible colocations (approximation ratio
//!    `ln k`).
//! 2. **Maximizing overall performance** (Section 5.2, [`maxfps`]): pack the
//!    requests onto a *fixed* fleet so the average frame rate is maximal —
//!    an online greedy guided by predicted FPS, against VBP worst-fit
//!    ([`vbp_fit`]).
//!
//! The [`dynamic`] module extends the static problems with a discrete-event
//! simulation of live session arrivals and departures.
//!
//! The [`coloc`] module enumerates and measures the candidate colocations
//! (the 385 ≤4-game subsets of 10 games used throughout the paper's Figures
//! 9–10) and [`eval`] scores final placements against the simulator's ground
//! truth.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm1;
pub mod coloc;
pub mod dynamic;
pub mod eval;
pub mod maxfps;
pub mod placement;
pub mod requests;
pub mod vbp_fit;

pub use algorithm1::{pack_requests, PackingResult};
pub use coloc::{enumerate_subsets, ColocationTable, FeasibilityReport};
pub use dynamic::{simulate_dynamic, DynamicConfig, DynamicResult, Policy};
pub use eval::{evaluate_cluster, ClusterEvaluation};
pub use maxfps::{assign_max_fps, MaxFpsResult};
pub use placement::{
    eligible_servers, placement_delta, select_server, select_server_cached,
    select_server_incremental, OccupancyView, ScoreCache, Selection,
};
pub use requests::{random_requests, RequestCounts};
pub use vbp_fit::assign_worst_fit;

use gaugur_baselines::DegradationPredictor;
use gaugur_core::{GAugur, Placement, ProfileStore};

/// A methodology that predicts the absolute FPS of each member of a
/// prospective colocation (drives the Section 5.2 greedy).
pub trait FpsModel: Sync {
    /// Predicted FPS of `members[idx]` when all of `members` share a server.
    fn predict_member_fps(&self, members: &[Placement], idx: usize) -> f64;

    /// Predicted summed FPS over every member of a colocation. The default
    /// sums per-member predictions; serving-side implementations may
    /// override it with a whole-colocation memo so the placement hot path
    /// pays one lookup per candidate server instead of one per member.
    fn predict_colocation_sum(&self, members: &[Placement]) -> f64 {
        (0..members.len())
            .map(|i| self.predict_member_fps(members, i))
            .sum()
    }

    /// Display name for result tables.
    fn model_name(&self) -> &'static str;
}

/// A methodology that judges whether an entire colocation meets a QoS floor
/// (drives the Section 5.1 packing).
pub trait FeasibilityModel: Sync {
    /// Whether every member of `members` is predicted to reach `qos` FPS.
    fn feasible(&self, qos: f64, members: &[Placement]) -> bool;

    /// Display name for result tables.
    fn judge_name(&self) -> &'static str;
}

/// GAugur's regression model as an FPS predictor.
pub struct GaugurRm<'a>(pub &'a GAugur);

impl FpsModel for GaugurRm<'_> {
    fn predict_member_fps(&self, members: &[Placement], idx: usize) -> f64 {
        let others: Vec<Placement> = members
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != idx)
            .map(|(_, &p)| p)
            .collect();
        self.0.predict_fps(members[idx], &others)
    }

    fn model_name(&self) -> &'static str {
        "GAugur(RM)"
    }
}

impl FeasibilityModel for GaugurRm<'_> {
    fn feasible(&self, qos: f64, members: &[Placement]) -> bool {
        if let [solo] = members {
            return solo_feasible(&self.0.profiles, *solo, qos);
        }
        (0..members.len()).all(|i| self.predict_member_fps(members, i) >= qos)
    }

    fn judge_name(&self) -> &'static str {
        "GAugur(RM)"
    }
}

/// GAugur's classification model as a feasibility judge.
pub struct GaugurCm<'a>(pub &'a GAugur);

impl FeasibilityModel for GaugurCm<'_> {
    fn feasible(&self, qos: f64, members: &[Placement]) -> bool {
        if let [solo] = members {
            return solo_feasible(&self.0.profiles, *solo, qos);
        }
        self.0.colocation_feasible(qos, members)
    }

    fn judge_name(&self) -> &'static str {
        "GAugur(CM)"
    }
}

/// Adapter: any degradation predictor (Sigmoid, SMiTe) plus the profile
/// store becomes an FPS predictor / feasibility judge.
pub struct DegradationFps<'a, P: DegradationPredictor + Sync> {
    /// The wrapped degradation predictor.
    pub predictor: &'a P,
    /// Profiles supplying Eq.-2 solo frame rates.
    pub profiles: &'a ProfileStore,
}

impl<P: DegradationPredictor + Sync> FpsModel for DegradationFps<'_, P> {
    fn predict_member_fps(&self, members: &[Placement], idx: usize) -> f64 {
        let target = members[idx];
        let others: Vec<Placement> = members
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != idx)
            .map(|(_, &p)| p)
            .collect();
        let solo = self.profiles.get(target.0).solo_fps_at(target.1);
        self.predictor.predict_degradation(target, &others) * solo
    }

    fn model_name(&self) -> &'static str {
        match self.predictor.name() {
            "SMiTe" => "SMiTe",
            _ => "Sigmoid",
        }
    }
}

impl<P: DegradationPredictor + Sync> FeasibilityModel for DegradationFps<'_, P> {
    fn feasible(&self, qos: f64, members: &[Placement]) -> bool {
        if let [solo] = members {
            return solo_feasible(self.profiles, *solo, qos);
        }
        (0..members.len()).all(|i| self.predict_member_fps(members, i) >= qos)
    }

    fn judge_name(&self) -> &'static str {
        self.model_name()
    }
}

/// A single game running alone suffers no interference, so its feasibility
/// is simply whether its profiled solo frame rate clears the bar — no
/// interference model is involved (they are trained on colocations of two
/// or more games and are undefined for an empty co-runner set).
fn solo_feasible(profiles: &ProfileStore, p: Placement, qos: f64) -> bool {
    profiles.get(p.0).solo_fps_at(p.1) >= qos
}

/// VBP as a feasibility judge (QoS-oblivious by construction).
pub struct VbpJudge<'a>(pub &'a gaugur_baselines::VbpPolicy);

impl FeasibilityModel for VbpJudge<'_> {
    fn feasible(&self, _qos: f64, members: &[Placement]) -> bool {
        self.0.feasible(members)
    }

    fn judge_name(&self) -> &'static str {
        "VBP"
    }
}
