//! Gaming-request workloads: "5000 gaming requests which are randomly
//! distributed among the 10 selected games" (Sections 5.1–5.2).

use gaugur_gamesim::GameId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outstanding request counts per game (BTreeMap for deterministic
/// iteration order).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestCounts {
    counts: BTreeMap<GameId, usize>,
}

impl RequestCounts {
    /// Build from explicit counts.
    pub fn from_counts(counts: impl IntoIterator<Item = (GameId, usize)>) -> RequestCounts {
        RequestCounts {
            counts: counts.into_iter().filter(|&(_, c)| c > 0).collect(),
        }
    }

    /// Remaining requests for one game.
    pub fn get(&self, id: GameId) -> usize {
        self.counts.get(&id).copied().unwrap_or(0)
    }

    /// Total outstanding requests.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Whether any request remains.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Consume one request of each game in `set`; returns false (and
    /// consumes nothing) if any game has none left.
    pub fn consume_set(&mut self, set: &[GameId]) -> bool {
        if set.iter().any(|id| self.get(*id) == 0) {
            return false;
        }
        for id in set {
            let c = self.counts.get_mut(id).expect("checked above");
            *c -= 1;
            if *c == 0 {
                self.counts.remove(id);
            }
        }
        true
    }

    /// Games that still have requests.
    pub fn remaining_games(&self) -> Vec<GameId> {
        self.counts.keys().copied().collect()
    }

    /// Flatten into an ordered request list (deterministically shuffled) for
    /// online assignment.
    pub fn as_request_stream(&self, seed: u64) -> Vec<GameId> {
        let mut stream: Vec<GameId> = self
            .counts
            .iter()
            .flat_map(|(&id, &c)| std::iter::repeat_n(id, c))
            .collect();
        use rand::seq::SliceRandom;
        let mut rng = gaugur_gamesim::rng::rng_for(seed, &[0x5245_5153]);
        stream.shuffle(&mut rng);
        stream
    }
}

/// Draw `total` requests uniformly at random over `ids`.
pub fn random_requests(ids: &[GameId], total: usize, seed: u64) -> RequestCounts {
    let mut rng = gaugur_gamesim::rng::rng_for(seed, &[0x0052_4551]);
    let mut counts: BTreeMap<GameId, usize> = BTreeMap::new();
    for _ in 0..total {
        let id = ids[rng.gen_range(0..ids.len())];
        *counts.entry(id).or_default() += 1;
    }
    RequestCounts { counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_requests_sum_to_total_and_cover_games() {
        let ids: Vec<GameId> = (0..10).map(GameId).collect();
        let r = random_requests(&ids, 5000, 1);
        assert_eq!(r.total(), 5000);
        // With 5000 draws over 10 games every game should appear.
        assert_eq!(r.remaining_games().len(), 10);
        // Roughly uniform.
        for id in &ids {
            let c = r.get(*id);
            assert!((350..=650).contains(&c), "{id}: {c}");
        }
    }

    #[test]
    fn consume_set_is_atomic() {
        let mut r = RequestCounts::from_counts([(GameId(0), 1), (GameId(1), 2)]);
        assert!(r.consume_set(&[GameId(0), GameId(1)]));
        assert_eq!(r.get(GameId(0)), 0);
        // Game 0 exhausted: consuming the pair again must fail atomically.
        assert!(!r.consume_set(&[GameId(0), GameId(1)]));
        assert_eq!(r.get(GameId(1)), 1);
        assert!(r.consume_set(&[GameId(1)]));
        assert!(r.is_empty());
    }

    #[test]
    fn request_stream_is_a_deterministic_permutation() {
        // Counts large enough that two seeds colliding on the same
        // arrangement is negligible (C(20,12) ≈ 1.3e5 arrangements); with
        // the original 3+2 counts there were only 10, so the seed-7 and
        // seed-8 streams could legitimately coincide.
        let r = RequestCounts::from_counts([(GameId(0), 12), (GameId(1), 8)]);
        let s1 = r.as_request_stream(7);
        let s2 = r.as_request_stream(7);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 20);
        assert_eq!(s1.iter().filter(|id| id.0 == 0).count(), 12);
        let s3 = r.as_request_stream(8);
        assert_ne!(s1, s3);
    }

    #[test]
    fn zero_counts_are_dropped() {
        let r = RequestCounts::from_counts([(GameId(0), 0), (GameId(1), 1)]);
        assert_eq!(r.remaining_games(), vec![GameId(1)]);
    }
}
