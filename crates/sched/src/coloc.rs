//! Colocation enumeration and ground-truth measurement (Section 5.1 setup).
//!
//! "To give a complete verification, we consider a small problem size with
//! 10 (randomly selected) games. We only consider the game colocations
//! containing less than five games (there are 385 such colocations for 10
//! games)." — `C(10,1) + C(10,2) + C(10,3) + C(10,4) = 385`.

use crate::FeasibilityModel;
use gaugur_core::Placement;
use gaugur_gamesim::{GameCatalog, GameId, Resolution, Server, Workload};
use gaugur_ml::metrics::Confusion;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// All subsets of `ids` with between 1 and `max_size` members, in
/// lexicographic order of indices.
pub fn enumerate_subsets(ids: &[GameId], max_size: usize) -> Vec<Vec<GameId>> {
    let mut out = Vec::new();
    let n = ids.len();
    // Iterative subset enumeration by size, to keep ordering predictable.
    fn rec(
        ids: &[GameId],
        start: usize,
        current: &mut Vec<GameId>,
        size: usize,
        out: &mut Vec<Vec<GameId>>,
    ) {
        if current.len() == size {
            out.push(current.clone());
            return;
        }
        for i in start..ids.len() {
            current.push(ids[i]);
            rec(ids, i + 1, current, size, out);
            current.pop();
        }
    }
    for size in 1..=max_size.min(n) {
        rec(ids, 0, &mut Vec::new(), size, &mut out);
    }
    out
}

/// Measured ground truth for every candidate colocation at one resolution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColocationTable {
    /// The resolution every game runs at.
    pub resolution: Resolution,
    /// The candidate colocations (each a sorted list of distinct games).
    pub sets: Vec<Vec<GameId>>,
    /// Measured FPS per member, parallel to `sets`.
    pub actual_fps: Vec<Vec<f64>>,
}

impl ColocationTable {
    /// Measure every ≤`max_size` subset of `ids` on the server.
    pub fn measure(
        server: &Server,
        catalog: &GameCatalog,
        ids: &[GameId],
        resolution: Resolution,
        max_size: usize,
    ) -> ColocationTable {
        let sets = enumerate_subsets(ids, max_size);
        let actual_fps: Vec<Vec<f64>> = sets
            .par_iter()
            .map(|set| {
                let ws: Vec<Workload<'_>> = set
                    .iter()
                    .map(|&id| Workload::game(catalog.get(id).expect("id"), resolution))
                    .collect();
                let out = server.measure_colocation(&ws);
                (0..set.len())
                    .map(|i| out.game_fps(i).expect("game"))
                    .collect()
            })
            .collect();
        ColocationTable {
            resolution,
            sets,
            actual_fps,
        }
    }

    /// Number of candidate colocations.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The members of set `i` as placements.
    pub fn placements(&self, i: usize) -> Vec<Placement> {
        self.sets[i]
            .iter()
            .map(|&id| (id, self.resolution))
            .collect()
    }

    /// Whether set `i` actually satisfies `qos` for every member.
    pub fn actually_feasible(&self, i: usize, qos: f64) -> bool {
        self.actual_fps[i].iter().all(|&f| f >= qos)
    }

    /// Indices of the sets that are actually feasible under `qos`.
    pub fn feasible_indices(&self, qos: f64) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.actually_feasible(i, qos))
            .collect()
    }
}

/// A methodology's feasibility judgements against ground truth (Figure 9a/b).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeasibilityReport {
    /// Methodology name.
    pub name: String,
    /// Confusion matrix over all candidate colocations.
    pub confusion: Confusion,
    /// Indices of colocations the methodology judged feasible.
    pub predicted_feasible: Vec<usize>,
    /// Indices judged feasible that are also actually feasible (the TP sets,
    /// the only ones Algorithm 1 may use — "using the false positives is not
    /// meaningful").
    pub usable: Vec<usize>,
}

impl FeasibilityReport {
    /// Judge every colocation in the table with a methodology.
    pub fn build(
        table: &ColocationTable,
        judge: &dyn FeasibilityModel,
        qos: f64,
    ) -> FeasibilityReport {
        let mut confusion = Confusion::default();
        let mut predicted_feasible = Vec::new();
        let mut usable = Vec::new();
        for i in 0..table.len() {
            let members = table.placements(i);
            let predicted = judge.feasible(qos, &members);
            let actual = table.actually_feasible(i, qos);
            match (actual, predicted) {
                (true, true) => confusion.tp += 1,
                (false, true) => confusion.fp += 1,
                (true, false) => confusion.fn_ += 1,
                (false, false) => confusion.tn += 1,
            }
            if predicted {
                predicted_feasible.push(i);
                if actual {
                    usable.push(i);
                }
            }
        }
        FeasibilityReport {
            name: judge.judge_name().to_string(),
            confusion,
            predicted_feasible,
            usable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugur_gamesim::Resolution;

    #[test]
    fn subset_count_matches_the_paper() {
        let ids: Vec<GameId> = (0..10).map(GameId).collect();
        let subsets = enumerate_subsets(&ids, 4);
        // C(10,1)+C(10,2)+C(10,3)+C(10,4) = 10+45+120+210.
        assert_eq!(subsets.len(), 385);
        assert_eq!(subsets.iter().filter(|s| s.len() == 1).count(), 10);
        assert_eq!(subsets.iter().filter(|s| s.len() == 4).count(), 210);
        // Members are distinct and sorted.
        for s in &subsets {
            for w in s.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn subsets_cap_at_population() {
        let ids: Vec<GameId> = (0..3).map(GameId).collect();
        let subsets = enumerate_subsets(&ids, 5);
        assert_eq!(subsets.len(), 7); // 3 + 3 + 1
    }

    #[test]
    fn table_measures_every_set() {
        let server = Server::reference(3);
        let catalog = GameCatalog::generate(42, 6);
        let ids: Vec<GameId> = catalog.games().iter().map(|g| g.id).collect();
        let table = ColocationTable::measure(&server, &catalog, &ids, Resolution::Fhd1080, 3);
        assert_eq!(table.len(), 6 + 15 + 20);
        for (set, fps) in table.sets.iter().zip(&table.actual_fps) {
            assert_eq!(set.len(), fps.len());
            assert!(fps.iter().all(|&f| f > 0.0));
        }
        // Singletons are (almost) solo FPS; 4-sets are slower per member.
        let single_mean: f64 = (0..6).map(|i| table.actual_fps[i][0]).sum::<f64>() / 6.0;
        let triple_mean: f64 = table
            .sets
            .iter()
            .zip(&table.actual_fps)
            .filter(|(s, _)| s.len() == 3)
            .flat_map(|(_, f)| f.iter().copied())
            .sum::<f64>()
            / 60.0;
        assert!(triple_mean < single_mean);
    }

    #[test]
    fn feasibility_indices_respect_qos_monotonicity() {
        let server = Server::reference(3);
        let catalog = GameCatalog::generate(42, 5);
        let ids: Vec<GameId> = catalog.games().iter().map(|g| g.id).collect();
        let table = ColocationTable::measure(&server, &catalog, &ids, Resolution::Fhd1080, 3);
        let at40 = table.feasible_indices(40.0).len();
        let at60 = table.feasible_indices(60.0).len();
        let at90 = table.feasible_indices(90.0).len();
        assert!(at40 >= at60);
        assert!(at60 >= at90);
    }
}
