//! Ground-truth evaluation of final placements.
//!
//! After a methodology has placed every request, the cluster's real
//! performance is what the *simulator* (standing in for the paper's physical
//! testbed) measures for each server's colocation — not what the methodology
//! predicted. Figures 9c and 10a/10b report these measured outcomes.

use gaugur_gamesim::{GameCatalog, GameId, Resolution, Server, Workload};
use gaugur_ml::metrics::Cdf;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Measured cluster-wide outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterEvaluation {
    /// Measured FPS of every placed game across all servers.
    pub fps: Vec<f64>,
    /// Number of non-empty servers.
    pub servers_used: usize,
}

impl ClusterEvaluation {
    /// Mean FPS over all placed games.
    pub fn average_fps(&self) -> f64 {
        if self.fps.is_empty() {
            return 0.0;
        }
        self.fps.iter().sum::<f64>() / self.fps.len() as f64
    }

    /// Fraction of games at or above `qos` FPS.
    pub fn qos_satisfaction(&self, qos: f64) -> f64 {
        if self.fps.is_empty() {
            return 1.0;
        }
        self.fps.iter().filter(|&&f| f >= qos).count() as f64 / self.fps.len() as f64
    }

    /// The FPS distribution as a CDF (Figure 10b).
    pub fn fps_cdf(&self) -> Cdf {
        Cdf::new(self.fps.clone())
    }
}

/// Measure every server's colocation and collect per-game outcomes.
///
/// Server contents that repeat (common: the greedy converges to a few good
/// mixes) are measured once and reused — the simulator is deterministic per
/// content set, like re-running the same test on the paper's testbed.
pub fn evaluate_cluster(
    server: &Server,
    catalog: &GameCatalog,
    placements: &[Vec<GameId>],
    resolution: Resolution,
) -> ClusterEvaluation {
    // Deduplicate contents.
    let mut unique: Vec<Vec<GameId>> = Vec::new();
    let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut counts: Vec<usize> = Vec::new();
    for contents in placements {
        if contents.is_empty() {
            continue;
        }
        let mut key: Vec<u32> = contents.iter().map(|g| g.0).collect();
        key.sort_unstable();
        match index.get(&key) {
            Some(&i) => counts[i] += 1,
            None => {
                index.insert(key, unique.len());
                unique.push(contents.clone());
                counts.push(1);
            }
        }
    }

    let measured: Vec<Vec<f64>> = unique
        .par_iter()
        .map(|contents| {
            let ws: Vec<Workload<'_>> = contents
                .iter()
                .map(|&id| Workload::game(catalog.get(id).expect("id"), resolution))
                .collect();
            let out = server.measure_colocation(&ws);
            (0..contents.len())
                .map(|i| out.game_fps(i).expect("game"))
                .collect()
        })
        .collect();

    let mut fps = Vec::new();
    let mut servers_used = 0;
    for (i, per_member) in measured.iter().enumerate() {
        for _ in 0..counts[i] {
            fps.extend_from_slice(per_member);
            servers_used += 1;
        }
    }

    ClusterEvaluation { fps, servers_used }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_counts_games_and_servers() {
        let server = Server::reference(9);
        let catalog = GameCatalog::generate(42, 6);
        let placements = vec![
            vec![GameId(0), GameId(1)],
            vec![GameId(2)],
            vec![],
            vec![GameId(0), GameId(1)], // duplicate content
        ];
        let eval = evaluate_cluster(&server, &catalog, &placements, Resolution::Fhd1080);
        assert_eq!(eval.servers_used, 3);
        assert_eq!(eval.fps.len(), 5);
        assert!(eval.average_fps() > 0.0);
        assert!(eval.qos_satisfaction(0.0) == 1.0);
        assert!(eval.qos_satisfaction(1e9) == 0.0);
        assert_eq!(eval.fps_cdf().len(), 5);
    }

    #[test]
    fn duplicate_contents_measure_identically() {
        let server = Server::reference(9);
        let catalog = GameCatalog::generate(42, 4);
        let placements = vec![vec![GameId(0), GameId(1)], vec![GameId(0), GameId(1)]];
        let eval = evaluate_cluster(&server, &catalog, &placements, Resolution::Fhd1080);
        assert_eq!(eval.fps[0], eval.fps[2]);
        assert_eq!(eval.fps[1], eval.fps[3]);
    }

    #[test]
    fn empty_cluster_is_well_defined() {
        let server = Server::reference(9);
        let catalog = GameCatalog::generate(42, 2);
        let eval = evaluate_cluster(&server, &catalog, &[], Resolution::Fhd1080);
        assert_eq!(eval.servers_used, 0);
        assert_eq!(eval.average_fps(), 0.0);
        assert_eq!(eval.qos_satisfaction(60.0), 1.0);
    }
}
