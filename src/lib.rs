//! # gaugur — interference prediction for colocated cloud games
//!
//! A production-quality Rust reproduction of *GAugur: Quantifying
//! Performance Interference of Colocated Games for Improving Resource
//! Utilization in Cloud Gaming* (Li et al., HPDC '19).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`gamesim`] — the simulated cloud-gaming testbed (games, seven shared
//!   resources, contention physics, pressure microbenchmarks);
//! * [`ml`] — from-scratch machine learning (CART, random forests, gradient
//!   boosting, SVMs, metrics);
//! * [`core`] — the GAugur methodology (profiling, feature construction,
//!   CM/RM models, online prediction);
//! * [`baselines`] — the paper's comparators (Sigmoid, SMiTe, VBP);
//! * [`sched`] — interference-aware request assignment (Algorithm 1, the
//!   max-FPS greedy, VBP worst-fit);
//! * [`serve`] — the online placement daemon (TCP wire protocol, live
//!   cluster state, model hot-reload, memoized prediction, load driver).
//!
//! ## Quickstart
//!
//! ```
//! use gaugur::prelude::*;
//!
//! // A simulated server and a small game catalog.
//! let server = Server::reference(7);
//! let catalog = GameCatalog::generate(42, 12);
//!
//! // Offline: profile every game, measure a training campaign, fit models.
//! let mut config = GAugurConfig::default();
//! config.plan = ColocationPlan { pairs: 40, triples: 10, quads: 5, seed: 1 };
//! let gaugur = GAugur::build(&server, &catalog, config);
//!
//! // Online: instantaneous predictions for an arbitrary colocation.
//! let res = Resolution::Fhd1080;
//! let target = (catalog[0].id, res);
//! let others = [(catalog[1].id, res), (catalog[2].id, res)];
//! let fps = gaugur.predict_fps(target, &others);
//! let ok = gaugur.predict_qos(60.0, target, &others);
//! assert!(fps > 0.0);
//! let _ = ok;
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use gaugur_baselines as baselines;
pub use gaugur_core as core;
pub use gaugur_gamesim as gamesim;
pub use gaugur_ml as ml;
pub use gaugur_sched as sched;
pub use gaugur_serve as serve;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use gaugur_baselines::{
        InterferencePredictor, SigmoidPredictor, SmitePredictor, VbpPolicy,
    };
    pub use gaugur_core::{
        Algorithm, ColocationPlan, GAugur, GAugurConfig, Placement, ProfileStore, Profiler,
        ProfilingConfig,
    };
    pub use gaugur_gamesim::{
        Game, GameCatalog, GameId, Genre, Microbenchmark, Resolution, Resource, Server, Workload,
    };
    pub use gaugur_sched::{
        assign_max_fps, assign_worst_fit, evaluate_cluster, pack_requests, random_requests,
        ColocationTable, FeasibilityReport, GaugurCm, GaugurRm,
    };
    pub use gaugur_serve::{Client, DaemonConfig, LoadConfig, ModelHandle, StatsSnapshot};
}
